"""Tests for the serving subsystem: fingerprints, snapshots, the kernel
store, deterministic substreams, the engine and the JSON-lines server."""

from __future__ import annotations

import io
import json
import os
import random
import subprocess
import sys
import threading

import pytest

from repro.api import WitnessSet
from repro.automata.nfa import NFA
from repro.automata.random_gen import random_nfa, random_ufa
from repro.core.kernel import CompiledDAG, compile_nfa
from repro.core.plan import Product, as_plan, lower_plan
from repro.errors import InvalidAutomatonError
from repro.service import (
    Engine,
    FingerprintError,
    KernelStore,
    ServiceClient,
    SnapshotError,
    draw_samples,
    draw_samples_coalesced,
    fingerprint_source,
    kernel_from_bytes,
    kernel_to_bytes,
    serve_stdio,
    serve_tcp,
    spec_key,
    witness_set_from_spec,
)
from repro.utils.rng import make_rng, spawn_seq, substreams

SEED = 20190621

SPEC = {"kind": "regex", "pattern": "(ab|ba)*", "alphabet": "ab", "n": 10}
SPEC2 = {
    "kind": "intersection",
    "left": {"kind": "regex", "pattern": "(ab|ba)*", "alphabet": "ab"},
    "right": {"kind": "regex", "pattern": "(a|b)*aa(a|b)*", "alphabet": "ab"},
    "n": 10,
}


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------


class TestFingerprint:
    def test_structural_identity(self):
        a = random_ufa(20, rng=SEED, completeness=0.9, ensure_nonempty_length=8)
        b = NFA(a.states, a.alphabet, a.transitions, a.initial, a.finals)
        assert fingerprint_source(a) == fingerprint_source(b)

    def test_different_automata_differ(self):
        a = random_ufa(20, rng=SEED, completeness=0.9, ensure_nonempty_length=8)
        b = random_ufa(20, rng=SEED + 1, completeness=0.9, ensure_nonempty_length=8)
        assert fingerprint_source(a) != fingerprint_source(b)

    def test_plan_fingerprints(self):
        left, right = as_plan("(ab|ba)*"), as_plan("(a|b)*")
        product = Product(left, right)
        again = Product(as_plan("(ab|ba)*"), as_plan("(a|b)*"))
        assert fingerprint_source(product) == fingerprint_source(again)
        assert fingerprint_source(product) != fingerprint_source(left)
        # Operand order matters (products are not canonicalized across
        # commutation — two spellings are two plans).
        assert fingerprint_source(product) != fingerprint_source(
            Product(as_plan("(a|b)*"), as_plan("(ab|ba)*"))
        )

    def test_witness_set_fingerprint_cached(self):
        ws = WitnessSet.from_regex("(ab|ba)*", 8, alphabet="ab", store=False)
        assert ws.fingerprint() == ws.fingerprint()
        assert ws.stats.hits.get("fingerprint", 0) >= 1

    def test_unserializable_state_raises(self):
        marker = object()
        nfa = NFA([marker], ["a"], [(marker, "a", marker)], marker, [marker])
        with pytest.raises(FingerprintError):
            fingerprint_source(nfa)

    def test_stable_across_hash_seeds(self):
        """The store contract: the fingerprint must not depend on the
        process's hash randomization."""
        nfa = random_ufa(12, rng=SEED, completeness=0.9, ensure_nonempty_length=6)
        script = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.automata.random_gen import random_ufa\n"
            "from repro.service import fingerprint_source\n"
            f"nfa = random_ufa(12, rng={SEED}, completeness=0.9, "
            "ensure_nonempty_length=6)\n"
            "print(fingerprint_source(nfa))\n"
        )
        outputs = set()
        for hash_seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            result = subprocess.run(
                [sys.executable, "-c", script],
                env=env,
                capture_output=True,
                text=True,
                cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            )
            assert result.returncode == 0, result.stderr
            outputs.add(result.stdout.strip())
        outputs.add(fingerprint_source(nfa))
        assert len(outputs) == 1


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------


def _assert_kernel_equivalent(kernel: CompiledDAG, restored: CompiledDAG):
    assert restored.n == kernel.n
    assert restored.trimmed == kernel.trimmed
    assert restored.symbols == kernel.symbols
    assert restored.total_runs == kernel.total_runs
    assert restored.vertex_count() == kernel.vertex_count()
    assert restored.edge_count() == kernel.edge_count()
    for t in range(kernel.n + 1):
        assert restored.layer_states(t) == kernel.layer_states(t)
        assert restored.final_indices(t) == kernel.final_indices(t)
    if kernel.total_runs:
        assert kernel.sample_batch(8, random.Random(3)) == restored.sample_batch(
            8, random.Random(3)
        )


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_ufa_round_trip(self, seed):
        nfa = random_ufa(
            10 + seed * 3, rng=SEED + seed, completeness=0.85,
            ensure_nonempty_length=8,
        )
        kernel = compile_nfa(nfa.without_epsilon(), 8, trimmed=True)
        kernel.backward_counts()
        _assert_kernel_equivalent(kernel, kernel_from_bytes(kernel_to_bytes(kernel)))

    @pytest.mark.parametrize("seed", range(5))
    def test_random_nfa_reachable_round_trip(self, seed):
        nfa = random_nfa(
            8 + seed * 2, rng=SEED + seed, density=1.6, ensure_nonempty_length=6
        )
        kernel = compile_nfa(nfa.without_epsilon(), 6, trimmed=False)
        kernel.forward_counts()
        restored = kernel_from_bytes(kernel_to_bytes(kernel))
        assert restored.spectrum_counts() == kernel.spectrum_counts()
        _assert_kernel_equivalent(kernel, restored)

    def test_plan_kernel_round_trip_keeps_lowering(self):
        plan = Product(as_plan("(ab|ba)*"), as_plan("(a|b)*aa(a|b)*"))
        kernel = lower_plan(plan, 10, trimmed=True)
        kernel.backward_counts()
        restored = kernel_from_bytes(kernel_to_bytes(kernel))
        _assert_kernel_equivalent(kernel, restored)
        assert restored.lowering is not None
        assert restored.lowering.as_dict() == kernel.lowering.as_dict()

    def test_bignum_spill_round_trip(self):
        # (a|b)* at n=80 counts 2^80 ≫ 2^63: the backward table spills.
        ws = WitnessSet.from_regex("(a|b)*", 80, alphabet="ab", store=False)
        kernel = ws.kernel
        assert kernel.total_runs == 2**80
        restored = kernel_from_bytes(kernel_to_bytes(kernel))
        assert restored.total_runs == 2**80
        assert kernel.sample_batch(4, random.Random(1)) == restored.sample_batch(
            4, random.Random(1)
        )

    def test_seeded_sample_streams_identical(self):
        nfa = random_ufa(25, rng=SEED, completeness=0.9, ensure_nonempty_length=12)
        kernel = compile_nfa(nfa.without_epsilon(), 12, trimmed=True)
        restored = kernel_from_bytes(kernel_to_bytes(kernel))
        for seed in range(5):
            a, b = random.Random(seed), random.Random(seed)
            assert [kernel.sample_word(a) for _ in range(5)] == [
                restored.sample_word(b) for _ in range(5)
            ]

    def test_bad_magic_rejected(self):
        with pytest.raises(SnapshotError):
            kernel_from_bytes(b"garbage that is not a snapshot")

    def test_truncated_rejected(self):
        nfa = random_ufa(10, rng=SEED, completeness=0.9, ensure_nonempty_length=6)
        data = kernel_to_bytes(compile_nfa(nfa.without_epsilon(), 6, trimmed=True))
        with pytest.raises(SnapshotError):
            kernel_from_bytes(data[: len(data) // 2])

    def test_tail_truncation_and_padding_rejected(self):
        """Losing (or gaining) whole 8-byte rows at the end must fail the
        restore, not produce a kernel that crashes later."""
        nfa = random_ufa(12, rng=SEED, completeness=0.9, ensure_nonempty_length=8)
        kernel = compile_nfa(nfa.without_epsilon(), 8, trimmed=True)
        kernel.backward_counts()
        data = kernel_to_bytes(kernel)
        for mutated in (data[:-8], data[:-16], data + b"\x00" * 8):
            with pytest.raises(SnapshotError):
                kernel_from_bytes(mutated)

    def test_extend_requires_resolver(self):
        nfa = random_ufa(10, rng=SEED, completeness=0.9, ensure_nonempty_length=8)
        stripped = nfa.without_epsilon()
        kernel = compile_nfa(stripped, 4, trimmed=False)
        blind = kernel_from_bytes(kernel_to_bytes(kernel))
        with pytest.raises(InvalidAutomatonError):
            blind.extend_to(6)
        resolved = kernel_from_bytes(
            kernel_to_bytes(kernel), source_resolver=lambda: stripped
        )
        resolved.extend_to(6)
        assert resolved.spectrum_counts() == compile_nfa(
            stripped, 6, trimmed=False
        ).spectrum_counts()


# ----------------------------------------------------------------------
# KernelStore
# ----------------------------------------------------------------------


@pytest.fixture
def store(tmp_path):
    return KernelStore(tmp_path / "kernels")


class TestKernelStore:
    def _kernel(self, seed=0, n=8):
        nfa = random_ufa(
            12, rng=SEED + seed, completeness=0.9, ensure_nonempty_length=n
        )
        kernel = compile_nfa(nfa.without_epsilon(), n, trimmed=True)
        kernel.backward_counts()
        return fingerprint_source(nfa), kernel

    def test_put_get_round_trip(self, store):
        fp, kernel = self._kernel()
        assert store.get(fp, 8, True) is None
        assert store.put(fp, 8, True, kernel)
        restored = store.get(fp, 8, True)
        assert restored is not None
        assert restored.total_runs == kernel.total_runs
        assert store.stats.hits == 1 and store.stats.misses == 1

    def test_keys_distinguish_mode_and_length(self, store):
        fp, kernel = self._kernel()
        store.put(fp, 8, True, kernel)
        assert store.get(fp, 8, False) is None
        assert store.get(fp, 9, True) is None

    def test_corruption_recovery(self, store):
        fp, kernel = self._kernel()
        store.put(fp, 8, True, kernel)
        path = store.path_for(fp, 8, True)
        path.write_bytes(b"RPROKRN1" + b"\x00" * 16)  # valid magic, garbage body
        assert store.get(fp, 8, True) is None
        assert store.stats.corrupt == 1
        assert not path.exists()  # quarantined
        # The store heals: a fresh put serves hits again.
        store.put(fp, 8, True, kernel)
        assert store.get(fp, 8, True) is not None

    def test_truncated_entry_recovery(self, store):
        fp, kernel = self._kernel()
        store.put(fp, 8, True, kernel)
        path = store.path_for(fp, 8, True)
        path.write_bytes(path.read_bytes()[:40])
        assert store.get(fp, 8, True) is None
        assert store.stats.corrupt == 1

    def test_lru_eviction(self, store):
        fp0, kernel0 = self._kernel(0)
        entry_size = len(kernel_to_bytes(kernel0))
        store.max_bytes = int(entry_size * 2.5)  # room for two entries
        store.put(fp0, 8, True, kernel0)
        fp1, kernel1 = self._kernel(1)
        store.put(fp1, 8, True, kernel1)
        assert store.stats.evictions == 0
        # Touch fp0 so fp1 becomes the LRU victim.
        os.utime(store.path_for(fp1, 8, True), (1, 1))
        assert store.get(fp0, 8, True) is not None
        fp2, kernel2 = self._kernel(2)
        store.put(fp2, 8, True, kernel2)
        assert store.stats.evictions >= 1
        assert store.get(fp1, 8, True) is None      # evicted
        assert store.get(fp0, 8, True) is not None  # kept (recently used)
        assert store.get(fp2, 8, True) is not None  # newest

    def test_orphaned_sidecars_evicted_with_their_snapshots(self, store):
        fp0, kernel0 = self._kernel(0)
        store.put_meta(fp0, {"unambiguous": True})
        store.put(fp0, 8, True, kernel0)
        # A budget that fits one snapshot: storing fp1 evicts fp0's
        # snapshot, and fp0's now-stranded sidecar goes with it.
        store.max_bytes = int(len(kernel_to_bytes(kernel0)) * 1.5)
        fp1, kernel1 = self._kernel(1)
        store.put(fp1, 8, True, kernel1)
        assert store.get(fp0, 8, True) is None
        assert store.get_meta(fp0) is None
        assert store.get(fp1, 8, True) is not None

    def test_meta_round_trip(self, store):
        store.put_meta("ab" * 32, {"unambiguous": True})
        store.put_meta("ab" * 32, {"other": 1})
        assert store.get_meta("ab" * 32) == {"unambiguous": True, "other": 1}
        assert store.get_meta("cd" * 32) is None

    def test_tolerates_entries_vanishing_under_it(self, store):
        """A sibling process's evictor may unlink entries (or whole
        fan-out dirs) between a listing and the stat/read that follows;
        every store operation must treat that as a miss, not a crash."""
        fingerprints = []
        for seed in range(4):
            fp, kernel = self._kernel(seed)
            store.put(fp, 8, True, kernel)
            store.put_meta(fp, {"unambiguous": True})
            fingerprints.append(fp)
        # Simulate the concurrent evictor: delete files behind the
        # store's back, including one whole fan-out directory.
        victims = store.entries()[:2]
        for path in victims:
            path.unlink()
        import shutil

        shutil.rmtree(store.path_for(fingerprints[0], 8, True).parent, ignore_errors=True)
        # Listing, sizing, reads and eviction scans all stay calm.
        assert isinstance(store.total_bytes(), int)
        store._evict_over_budget()
        for fp in fingerprints:
            store.get(fp, 8, True)  # hit or clean miss, never a crash
        fp_new, kernel_new = self._kernel(9)
        assert store.put(fp_new, 8, True, kernel_new)
        assert store.get(fp_new, 8, True) is not None

    def test_lru_scan_tolerates_race_on_stat(self, store, monkeypatch):
        """The exact race: an entry vanishes between the LRU scan's
        listing and its stat call."""
        from pathlib import Path

        fp, kernel = self._kernel(0)
        store.put(fp, 8, True, kernel)
        store.max_bytes = 1  # force an eviction pass on next put
        real_stat = Path.stat

        def racing_stat(self, **kwargs):
            if self.suffix == ".kern" and os.path.exists(self):
                os.unlink(self)  # another process just evicted it
            return real_stat(self, **kwargs)

        monkeypatch.setattr(Path, "stat", racing_stat)
        fp2, kernel2 = self._kernel(1)
        store.put(fp2, 8, True, kernel2)  # must not raise
        monkeypatch.setattr(Path, "stat", real_stat)
        assert isinstance(store.total_bytes(), int)


class TestWitnessSetStoreWiring:
    def test_warm_start_hits_store(self, store):
        nfa = random_ufa(30, rng=SEED, completeness=0.9, ensure_nonempty_length=16)
        cold = WitnessSet.from_nfa(nfa, 16, store=store)
        count = cold.count()
        samples = cold.sample_batch(5, rng=3, use_substreams=True)
        warm = WitnessSet.from_nfa(nfa, 16, store=store)
        assert warm.count() == count
        assert warm.sample_batch(5, rng=3, use_substreams=True) == samples
        assert store.stats.hits >= 1
        # The warm set never unrolled or lowered anything: its kernel
        # came from the snapshot, so the dag/stripped artifacts were
        # never built.
        assert "dag" not in warm._cache and "stripped" not in warm._cache

    def test_ambiguity_certificate_persisted(self, store):
        nfa = random_ufa(20, rng=SEED, completeness=0.9, ensure_nonempty_length=10)
        assert WitnessSet.from_nfa(nfa, 10, store=store).is_unambiguous
        warm = WitnessSet.from_nfa(nfa, 10, store=store)
        assert warm.is_unambiguous
        assert "stripped" not in warm._cache  # certificate came from meta

    def test_plan_backed_sets_round_trip(self, store):
        # An unambiguous product, so count/sample run on the kernel
        # (ambiguous plans fall back to the subset counter, which never
        # compiles — nothing to persist).
        operands = ("(ab|ba)*", "(ab)*(a|b)?", 10)
        baseline = WitnessSet.from_intersection(*operands, store=False)
        assert baseline.is_unambiguous
        cold = WitnessSet.from_intersection(*operands, store=store)
        assert cold.count() == baseline.count()
        warm = WitnessSet.from_intersection(*operands, store=store)
        assert warm.count() == baseline.count()
        assert store.stats.hits >= 1
        assert warm.describe()["lowering"] is not None

    def test_unfingerprintable_source_opts_out(self, store):
        marker = object()
        nfa = NFA([marker], ["a"], [(marker, "a", marker)], marker, [marker])
        ws = WitnessSet.from_nfa(nfa, 4, store=store)
        assert ws.count() == 1  # still answers, just without persistence
        assert store.stats.stores == 0

    def test_backend_guard_verifies_restored_kernels(self, store):
        """A snapshot-restored kernel passes the kernel= guard for its
        own instance (fingerprint match) and is rejected for another."""
        from repro.errors import BackendError

        operands = ("(ab|ba)*", "(ab)*(a|b)?", 10)
        baseline = WitnessSet.from_intersection(*operands, store=False)
        WitnessSet.from_intersection(*operands, store=store).count()
        restored = WitnessSet.from_intersection(*operands, store=store).kernel
        assert restored.fingerprint is not None
        # A *different* witness set over the same instance accepts it...
        fresh = WitnessSet.from_intersection(*operands, store=False)
        assert fresh.count("exact", kernel=restored) == baseline.count()
        # ...and an unrelated witness set rejects it.
        other = WitnessSet.from_regex("(a|b)*", 10, alphabet="ab", store=False)
        with pytest.raises(BackendError):
            other.count("exact", kernel=restored)

    def test_spectrum_past_n_on_restored_kernel(self, store):
        nfa = random_ufa(15, rng=SEED, completeness=0.95, ensure_nonempty_length=12)
        cold = WitnessSet.from_nfa(nfa, 6, store=store)
        baseline = WitnessSet.from_nfa(nfa, 6, store=False)
        assert cold.spectrum() == baseline.spectrum()
        warm = WitnessSet.from_nfa(nfa, 6, store=store)
        # Extending past the snapshot resolves the source lazily.
        assert warm.spectrum(10) == baseline.spectrum(10)


# ----------------------------------------------------------------------
# Deterministic substreams
# ----------------------------------------------------------------------


class TestSubstreams:
    def test_spawn_seq_deterministic_and_order_free(self):
        streams_a = [spawn_seq(make_rng(5), i) for i in (0, 1, 2)]
        streams_b = [spawn_seq(make_rng(5), i) for i in (2, 1, 0)][::-1]
        assert [g.random() for g in streams_a] == [g.random() for g in streams_b]

    def test_spawn_seq_does_not_advance_parent(self):
        parent = make_rng(5)
        before = parent.getstate()
        spawn_seq(parent, 3)
        assert parent.getstate() == before

    def test_distinct_indices_distinct_streams(self):
        parent = make_rng(5)
        values = {spawn_seq(parent, i).getrandbits(64) for i in range(32)}
        assert len(values) == 32

    def test_sample_batch_substreams_prefix_stable(self):
        """Draw i depends only on (seed, i): a longer batch extends a
        shorter one instead of reshuffling it."""
        ws = WitnessSet.from_regex("(ab|ba)*", 12, alphabet="ab", store=False)
        small = ws.sample_batch(3, rng=9, use_substreams=True)
        large = ws.sample_batch(7, rng=9, use_substreams=True)
        assert large[:3] == small

    def test_repeated_batches_on_live_rng_differ(self):
        """use_substreams with a shared generator must not replay the
        same batch (the parent is ticked once per call); an integer seed
        replays by design."""
        ws = WitnessSet.from_regex("(a|b)*", 16, alphabet="ab", store=False)
        shared_rng = make_rng(3)
        first = ws.sample_batch(4, rng=shared_rng, use_substreams=True)
        second = ws.sample_batch(4, rng=shared_rng, use_substreams=True)
        assert first != second
        assert ws.sample_batch(4, rng=3, use_substreams=True) == ws.sample_batch(
            4, rng=3, use_substreams=True
        )

    def test_coalesced_equals_separate(self):
        ws = WitnessSet.from_regex("(ab|ba)*(a|b)?", 11, alphabet="ab", store=False)
        requests = [(3, 7), (2, 8), (4, 7)]
        coalesced = draw_samples_coalesced(ws, requests)
        separate = [draw_samples(ws, k, seed) for k, seed in requests]
        assert coalesced == separate

    def test_ambiguous_route_coalesced_equals_separate(self):
        ws = WitnessSet.from_regex("(a|b)*a(a|b)*", 8, alphabet="ab", store=False)
        assert not ws.is_unambiguous
        requests = [(2, 1), (3, 2)]
        assert draw_samples_coalesced(ws, requests) == [
            draw_samples(ws, k, seed) for k, seed in requests
        ]


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------


def _mixed_requests():
    return [
        {"id": 1, "op": "count", "spec": SPEC},
        {"id": 2, "op": "sample", "spec": SPEC, "k": 3, "seed": 7},
        {"id": 3, "op": "sample", "spec": SPEC, "k": 2, "seed": 8},
        {"id": 4, "op": "count", "spec": SPEC2},
        {"id": 5, "op": "sample_batch", "spec": SPEC2, "k": 4, "seed": 9},
        {"id": 6, "op": "spectrum", "spec": SPEC, "max_length": 6},
        {"id": 7, "op": "describe", "spec": SPEC2},
        {"id": 8, "op": "ping"},
    ]


def _results(responses):
    return {response["id"]: response.get("result") for response in responses}


class TestEngine:
    def test_in_process_execution(self):
        with Engine(workers=0) as engine:
            responses = engine.execute(_mixed_requests())
        assert all(response["ok"] for response in responses)
        results = _results(responses)
        assert results[1] == 32
        assert len(results[2]) == 3 and len(results[3]) == 2
        assert results[6][0] == [0, 1]

    def test_same_spec_samples_coalesce(self):
        with Engine(workers=0) as engine:
            responses = engine.execute(_mixed_requests())
        by_id = {response["id"]: response for response in responses}
        assert by_id[2].get("coalesced") == 2
        assert by_id[3].get("coalesced") == 2

    def test_multiworker_matches_in_process(self):
        requests = _mixed_requests()
        with Engine(workers=0) as local:
            base = _results(local.execute(requests))
        with Engine(workers=2) as pool:
            assert _results(pool.execute(requests)) == base
            # Affinity: repeating the batch lands specs on the same
            # workers, so every kernel is already resident.
            pool.execute(requests)
            aggregated = pool.stats()
            per_worker = pool.stats(per_worker=True)
        assert aggregated["hits"] > 0
        assert aggregated["hits"] == sum(entry["hits"] for entry in per_worker)
        assert aggregated["workers"] == 2 and aggregated["alive"] == 2

    def test_affinity_routing_is_deterministic(self):
        with Engine(workers=4) as engine:
            key = spec_key(SPEC)
            assert engine.route(key) == engine.route(key)
            engine.close()

    def test_error_isolation(self):
        requests = [
            {"id": 1, "op": "count", "spec": SPEC},
            {"id": 2, "op": "nonsense", "spec": SPEC},
            {"id": 3, "op": "count", "spec": {"kind": "bogus"}},
        ]
        with Engine(workers=0) as engine:
            responses = engine.execute(requests)
        assert responses[0]["ok"]
        assert not responses[1]["ok"] and not responses[2]["ok"]
        assert responses[2]["error_type"] == "ProtocolError"

    def test_duplicate_ids_across_clients_stay_positional(self):
        """Two clients may both say id 'c0' in one batch: responses are
        matched by batch position, never by the client-chosen id."""
        requests = [
            {"id": "c0", "op": "count", "spec": SPEC},
            {"id": "c0", "op": "count", "spec": SPEC2},
        ]
        for workers in (0, 2):
            with Engine(workers=workers) as engine:
                for _ in range(3):  # repeat: completion order varies
                    responses = engine.execute([dict(r) for r in requests])
                    assert [r["result"] for r in responses] == [32, 26]
                    assert all("__seq" not in r for r in responses)

    def test_dead_worker_fails_fast_instead_of_hanging(self):
        with Engine(workers=2) as engine:
            victim = engine.route(spec_key(SPEC))
            engine._processes[victim].terminate()
            engine._processes[victim].join(timeout=5)
            responses = engine.execute(
                [
                    {"id": 1, "op": "count", "spec": SPEC},
                    {"id": 2, "op": "count", "spec": SPEC2},
                ]
            )
        by_id = {response["id"]: response for response in responses}
        assert not by_id[1]["ok"] and by_id[1]["error_type"] == "EngineError"
        # The surviving worker keeps serving (unless SPEC2 shares the
        # dead worker's route, in which case it also fails fast).
        if engine.route(spec_key(SPEC2)) != victim:
            assert by_id[2]["ok"] and by_id[2]["result"] == 26

    def test_dead_worker_restarts_for_next_batch(self):
        with Engine(workers=2) as engine:
            victim = engine.route(spec_key(SPEC))
            engine._processes[victim].terminate()
            engine._processes[victim].join(timeout=5)
            first = engine.execute([{"id": 1, "op": "count", "spec": SPEC}])
            assert not first[0]["ok"]  # in-flight batch still fails fast
            # Failing the batch respawned the worker: the same spec
            # routes to the live replacement and answers again.
            second = engine.execute([{"id": 2, "op": "count", "spec": SPEC}])
            assert second[0]["ok"] and second[0]["result"] == 32

    def test_invalid_k_never_steals_sibling_witnesses(self):
        good = {"id": 2, "op": "sample", "spec": SPEC, "k": 2, "seed": 5}
        with Engine(workers=0) as engine:
            solo = engine.execute([dict(good)])[0]["result"]
            responses = engine.execute(
                [{"id": 1, "op": "sample", "spec": SPEC, "k": -1, "seed": 4}, good]
            )
        assert not responses[0]["ok"]
        assert responses[0]["error_type"] == "ProtocolError"
        assert responses[1]["ok"] and responses[1]["result"] == solo

    def test_shared_store_across_workers(self, tmp_path):
        root = tmp_path / "kernels"
        requests = [{"id": 1, "op": "count", "spec": SPEC}]
        with Engine(workers=0, store_root=root) as engine:
            engine.execute(requests)
        assert KernelStore(root).entries()
        with Engine(workers=2, store_root=root) as pool:
            responses = pool.execute(requests)
        assert responses[0]["result"] == 32

    def test_execute_stream_pages_enumeration(self):
        """execute_stream yields paged chunk responses whose items
        concatenate to the full enumeration, for workers=0 and a pool."""
        from repro.service.protocol import render_witness

        expected = [render_witness(w) for w in witness_set_from_spec(SPEC).enumerate()]
        for workers in (0, 2):
            with Engine(workers=workers) as engine:
                chunks = list(
                    engine.execute_stream(
                        {"id": 1, "op": "enumerate", "spec": SPEC}, chunk_size=6
                    )
                )
            assert all(chunk["ok"] for chunk in chunks)
            items = [item for chunk in chunks for item in chunk["result"]["items"]]
            assert items == expected
            assert chunks[-1]["result"]["done"]
            assert all(len(c["result"]["items"]) <= 6 for c in chunks)

    def test_execute_stream_honours_limit(self):
        with Engine(workers=0) as engine:
            chunks = list(
                engine.execute_stream(
                    {"id": 1, "op": "enumerate", "spec": SPEC, "limit": 10},
                    chunk_size=4,
                )
            )
        items = [item for chunk in chunks for item in chunk["result"]["items"]]
        assert len(items) == 10

    def test_engine_honours_store_env_default(self, tmp_path, monkeypatch):
        root = tmp_path / "env-kernels"
        monkeypatch.setenv("REPRO_KERNEL_STORE", str(root))
        with Engine(workers=0) as engine:
            engine.execute([{"id": 1, "op": "count", "spec": SPEC}])
        assert KernelStore(root).entries(), "env-default store must persist kernels"
        with Engine(workers=0, store_root=False) as engine:
            assert engine.store_root is None  # explicit opt-out wins


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------


class TestSpecs:
    def test_witness_set_from_spec_matches_facade(self):
        assert witness_set_from_spec(SPEC).count() == WitnessSet.from_regex(
            "(ab|ba)*", 10, alphabet="ab", store=False
        ).count()

    def test_spec_key_stable_under_field_order(self):
        shuffled = {"n": 10, "pattern": "(ab|ba)*", "kind": "regex", "alphabet": "ab"}
        assert spec_key(SPEC) == spec_key(shuffled)

    def test_dnf_spec(self):
        ws = witness_set_from_spec({"kind": "dnf", "formula": "x0 & !x1 | x2"})
        assert ws.count() == WitnessSet.from_dnf("x0 & !x1 | x2", store=False).count()

    def test_nfa_spec_round_trip(self):
        from repro.automata.serialization import nfa_to_json

        nfa = random_ufa(8, rng=SEED, completeness=0.9, ensure_nonempty_length=5)
        spec = {"kind": "nfa", "nfa": json.loads(nfa_to_json(nfa)), "n": 5}
        assert witness_set_from_spec(spec).count() == WitnessSet.from_nfa(
            nfa, 5, store=False
        ).count()


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------


def _request_lines(requests):
    return "".join(json.dumps(request) + "\n" for request in requests)


class TestServeStdio:
    def test_round_trip(self):
        stdin = io.StringIO(
            _request_lines(
                [
                    {"id": 1, "op": "count", "spec": SPEC},
                    {"id": 2, "op": "sample", "spec": SPEC, "k": 2, "seed": 7},
                ]
            )
        )
        stdout = io.StringIO()
        with Engine(workers=0) as engine:
            assert serve_stdio(engine, stdin=stdin, stdout=stdout) == 0
        responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
        results = {response["id"]: response["result"] for response in responses}
        assert results[1] == 32 and len(results[2]) == 2

    def test_malformed_line_answers_error(self):
        stdin = io.StringIO("this is not json\n")
        stdout = io.StringIO()
        with Engine(workers=0) as engine:
            serve_stdio(engine, stdin=stdin, stdout=stdout)
        response = json.loads(stdout.getvalue().splitlines()[0])
        assert not response["ok"]

    def test_shutdown_stops_loop(self):
        stdin = io.StringIO(_request_lines([{"id": 1, "op": "shutdown"}]))
        stdout = io.StringIO()
        with Engine(workers=0) as engine:
            serve_stdio(engine, stdin=stdin, stdout=stdout)
        assert json.loads(stdout.getvalue().splitlines()[0])["result"] == "bye"

    def test_oversized_line_answers_error_and_recovers(self):
        """The unbounded-buffering regression: a huge line gets a
        one-line JSON error and later requests still work."""
        stdin = io.StringIO(
            "x" * 5000 + "\n" + _request_lines([{"id": 1, "op": "count", "spec": SPEC}])
        )
        stdout = io.StringIO()
        with Engine(workers=0) as engine:
            serve_stdio(engine, stdin=stdin, stdout=stdout, max_line=1024)
        responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert not responses[0]["ok"] and "too long" in responses[0]["error"]
        assert responses[1]["ok"] and responses[1]["result"] == 32

    def test_non_selectable_fallback_is_bounded_too(self):
        """The no-fd fallback path must cap every readline call: a
        100 KB line against a 1 KB bound is read in bounded slices, gets
        the error, and the stream stays usable."""
        payload = "x" * 100_000 + "\n" + _request_lines(
            [{"id": 1, "op": "count", "spec": SPEC}]
        )

        class NoFilenoReader:
            def __init__(self, text):
                self.text = text
                self.offset = 0
                self.max_requested = 0

            def readline(self, size=-1):
                assert size >= 0, "the fallback reader must cap readline"
                self.max_requested = max(self.max_requested, size)
                end = self.text.find("\n", self.offset, self.offset + size)
                end = self.offset + size if end == -1 else end + 1
                chunk = self.text[self.offset:end]
                self.offset = end
                return chunk

        reader = NoFilenoReader(payload)
        stdout = io.StringIO()
        with Engine(workers=0) as engine:
            serve_stdio(engine, stdin=reader, stdout=stdout, max_line=1024)
        responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert not responses[0]["ok"] and "too long" in responses[0]["error"]
        assert responses[1]["ok"] and responses[1]["result"] == 32
        assert reader.max_requested <= 1025  # never a whole-line read

    def test_real_pipe_oversized_line_discards_bounded(self):
        """Over a real pipe the reader never buffers past max_line: the
        oversized line is discarded up to its newline (even when it
        spans many reads) and the stream stays usable."""
        read_fd, write_fd = os.pipe()
        payload = (
            b"y" * 4000
            + b" more of the same line\n"
            + _request_lines([{"id": 2, "op": "count", "spec": SPEC}]).encode()
            + _request_lines([{"id": 9, "op": "shutdown"}]).encode()
        )
        os.write(write_fd, payload)
        os.close(write_fd)
        stdout = io.StringIO()
        with Engine(workers=0) as engine:
            with os.fdopen(read_fd, "r") as stdin:
                serve_stdio(engine, stdin=stdin, stdout=stdout, max_line=1024)
        responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert any(
            not r["ok"] and "too long" in r.get("error", "") for r in responses
        )
        assert any(r.get("id") == 2 and r.get("result") == 32 for r in responses)

    def test_real_pipe_batches_and_coalesces(self):
        """Over an actual pipe (fd framing), a pipelined burst lands in
        one engine batch, so same-spec samples coalesce."""
        read_fd, write_fd = os.pipe()
        requests = [
            {"id": i, "op": "sample", "spec": SPEC, "k": 1, "seed": i}
            for i in range(4)
        ]
        payload = _request_lines(requests) + _request_lines(
            [{"id": 99, "op": "shutdown"}]
        )
        os.write(write_fd, payload.encode("utf-8"))
        os.close(write_fd)
        stdout = io.StringIO()
        with Engine(workers=0) as engine:
            with os.fdopen(read_fd, "r") as stdin:
                assert serve_stdio(engine, stdin=stdin, stdout=stdout) == 0
        responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
        samples = [r for r in responses if isinstance(r.get("id"), int) and r["id"] < 4]
        assert len(samples) == 4 and all(r["ok"] for r in samples)
        assert all(r.get("coalesced") == 4 for r in samples)


def _start_tcp_server(engine, **kwargs):
    from repro.service.server import start_tcp_server_thread

    return start_tcp_server_thread(engine, **kwargs)


@pytest.fixture
def tcp_server():
    engine = Engine(workers=0)
    thread, (host, port) = _start_tcp_server(engine, batch_window=0.05)
    yield host, port
    try:
        with ServiceClient(host, port, timeout=5) as client:
            client.shutdown()
    except OSError:
        pass
    thread.join(timeout=10)
    engine.close()


class TestServeTcp:
    def test_count_and_sample(self, tcp_server):
        host, port = tcp_server
        with ServiceClient(host, port) as client:
            assert client.result("count", SPEC) == 32
            samples = client.result("sample", SPEC, k=3, seed=7)
        with Engine(workers=0) as engine:
            local = engine.execute(
                [{"id": 0, "op": "sample", "spec": SPEC, "k": 3, "seed": 7}]
            )[0]["result"]
        assert samples == local

    def test_pipelined_batch_coalesces(self, tcp_server):
        host, port = tcp_server
        with ServiceClient(host, port) as client:
            responses = client.send(
                [
                    {"op": "sample", "spec": SPEC, "k": 2, "seed": 1},
                    {"op": "sample", "spec": SPEC, "k": 2, "seed": 2},
                    {"op": "count", "spec": SPEC},
                ]
            )
        assert all(response["ok"] for response in responses)
        # Both samples arrived in one socket write → one kernel pass.
        assert responses[0].get("coalesced") == 2

    def test_ping_and_stats(self, tcp_server):
        host, port = tcp_server
        with ServiceClient(host, port) as client:
            assert client.result("ping") == "pong"
            stats = client.result("stats")
            detailed = client.result("stats", per_worker=True)
        # Server-level stats aggregate every worker's counters plus the
        # pool-wide merged metrics snapshot.
        assert "served" in stats
        assert "workers" not in stats  # per-worker list is opt-in
        assert stats["engine"]["workers"] >= 1
        assert "counters" in stats["metrics"]
        assert all("resident" in worker for worker in detailed["workers"])

    def test_malformed_line_gets_error_response(self, tcp_server):
        import socket as socket_module

        host, port = tcp_server
        with socket_module.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"this is not json\n")
            response = json.loads(sock.makefile().readline())
        assert not response["ok"]


# ----------------------------------------------------------------------
# The async TCP server: concurrency, bounds, deadlines, streaming
# ----------------------------------------------------------------------


BIG_SPEC = {"kind": "regex", "pattern": "(a|b)*", "alphabet": "ab", "n": 40}


class TestAsyncServe:
    def test_32_concurrent_clients_with_isolation(self, tcp_server):
        """≥ 32 simultaneous connections, each with its own seeded
        requests; every response matches the in-process facade."""
        host, port = tcp_server
        outcomes: list = [None] * 32
        errors: list = []

        def client_main(index):
            try:
                with ServiceClient(host, port, timeout=30) as client:
                    count = client.result("count", SPEC)
                    samples = client.result("sample", SPEC, k=2, seed=index)
                    outcomes[index] = (count, samples)
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append((index, error))

        threads = [
            threading.Thread(target=client_main, args=(i,)) for i in range(32)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert all(outcome is not None for outcome in outcomes)
        with Engine(workers=0) as local:
            for index, (count, samples) in enumerate(outcomes):
                assert count == 32
                expected = local.execute(
                    [{"id": 0, "op": "sample", "spec": SPEC, "k": 2, "seed": index}]
                )[0]["result"]
                assert samples == expected, f"client {index} diverged"

    def test_oversized_line_answers_error_and_closes(self):
        """An endless line is answered with a one-line JSON error at the
        max-line bound — the reader never buffers it."""
        import socket as socket_module

        engine = Engine(workers=0)
        thread, (host, port) = _start_tcp_server(engine, max_line=4096)
        try:
            with socket_module.create_connection((host, port), timeout=10) as sock:
                sock.sendall(b"z" * 300_000)  # no newline, 73x the bound
                sock.settimeout(10)
                data = b""
                while b"\n" not in data:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    data += chunk
                response = json.loads(data.split(b"\n")[0])
            assert not response["ok"]
            assert "too long" in response["error"]
            # The server stays healthy for the next client.
            with ServiceClient(host, port) as client:
                assert client.result("count", SPEC) == 32
                client.shutdown()
        finally:
            thread.join(timeout=10)
            engine.close()

    def test_request_deadline_answers_timeout(self):
        engine = Engine(workers=0)
        thread, (host, port) = _start_tcp_server(
            engine, request_timeout=0.0001, batch_window=0.05
        )
        try:
            with ServiceClient(host, port) as client:
                response = client.request("count", SPEC)
                assert not response["ok"]
                assert response["error_type"] == "TimeoutError"
                # A per-request override beats the server default.
                response = client.request("count", SPEC, timeout_ms=30_000)
                assert response["ok"] and response["result"] == 32
                client.shutdown()
        finally:
            thread.join(timeout=10)
            engine.close()

    def test_cross_connection_coalescing(self, tcp_server):
        """Same-spec sample bursts from *different* connections land in
        one engine batch (the old server only coalesced within one)."""
        host, port = tcp_server
        barrier = threading.Barrier(6)
        coalesced: list = []

        def one_client(seed):
            with ServiceClient(host, port, timeout=30) as client:
                barrier.wait(timeout=10)
                response = client.request("sample", SPEC, k=1, seed=seed)
                assert response["ok"]
                coalesced.append(response.get("coalesced", 1))

        threads = [threading.Thread(target=one_client, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(coalesced) == 6
        # At least one batch merged requests from distinct connections.
        assert max(coalesced) >= 2, coalesced

    def test_streamed_enumeration_pages_through(self, tcp_server):
        host, port = tcp_server
        ws = witness_set_from_spec(SPEC)
        from repro.service.protocol import render_witness

        expected = [render_witness(w) for w in ws.enumerate()]
        with ServiceClient(host, port) as client:
            streamed = list(client.enumerate(SPEC, chunk_size=5))
        assert streamed == expected

    def test_streamed_enumeration_never_materializes(self, tcp_server):
        """First witnesses of a 2^40-word set arrive immediately; the
        abandoned stream is cancelled and the connection stays usable."""
        host, port = tcp_server
        with ServiceClient(host, port, timeout=30) as client:
            stream = client.enumerate(BIG_SPEC, chunk_size=20)
            first = [next(stream) for _ in range(50)]
            stream.close()  # sends cancel; residual chunks are skipped
            assert len(set(first)) == 50
            assert all(len(w) == 40 for w in first)
            # Same connection keeps serving after the abandoned stream.
            assert client.result("count", SPEC) == 32
            assert list(client.enumerate(SPEC, limit=7, chunk_size=3)) == [
                w for w in list(client.enumerate(SPEC, chunk_size=50))[:7]
            ]

    def test_stream_resumes_from_cursor(self, tcp_server):
        host, port = tcp_server
        with ServiceClient(host, port) as client:
            full = list(client.enumerate(SPEC, chunk_size=4))
            stream = client.enumerate(SPEC, chunk_size=4)
            head = [next(stream) for _ in range(4)]  # exactly one chunk
            cursor = client.last_cursor
            stream.close()
            assert cursor is not None
            tail = list(client.enumerate(SPEC, chunk_size=4, cursor=cursor))
        assert head + tail == full

    def test_paged_enumerate_request_response(self, tcp_server):
        """The non-streamed op: one request, one page, explicit cursor."""
        host, port = tcp_server
        with ServiceClient(host, port) as client:
            page = client.result("enumerate", SPEC, chunk_size=10)
            assert len(page["items"]) == 10 and not page["done"]
            rest = client.result("enumerate", SPEC, cursor=page["cursor"])
            assert rest["done"] and len(page["items"]) + len(rest["items"]) == 32
            bogus = client.request("enumerate", SPEC, cursor=[[0, 0, 99]])
            assert not bogus["ok"] and bogus["error_type"] == "ProtocolError"

    def test_gapped_cursor_is_rejected_not_mispaged(self):
        """A cursor missing a decision triple at a branching vertex must
        raise, never replay wrong words (or loop forever server-side)."""
        from repro.core.enumeration import algorithm1_page

        ws = witness_set_from_spec(
            {"kind": "regex", "pattern": "(a|b)(a|b)", "alphabet": "ab", "n": 2}
        )
        with pytest.raises(ValueError):
            algorithm1_page(ws.kernel, [[1, 0, 1]], 10)
        with Engine(workers=0) as engine:
            response = engine.execute(
                [
                    {
                        "id": 1,
                        "op": "enumerate",
                        "spec": {
                            "kind": "regex",
                            "pattern": "(a|b)(a|b)",
                            "alphabet": "ab",
                            "n": 2,
                        },
                        "cursor": [[1, 0, 1]],
                    }
                ]
            )[0]
        assert not response["ok"] and response["error_type"] == "ProtocolError"

    def test_zero_chunk_size_is_rejected_not_spun(self):
        """chunk_size=0 would page empty chunks forever; it must be a
        protocol error on every route."""
        with Engine(workers=0) as engine:
            response = engine.execute(
                [{"id": 1, "op": "enumerate", "spec": SPEC, "chunk_size": 0}]
            )[0]
            assert not response["ok"] and response["error_type"] == "ProtocolError"
            chunks = list(
                engine.execute_stream(
                    {"id": 1, "op": "enumerate", "spec": SPEC}, chunk_size=0
                )
            )
        assert len(chunks) == 1 and not chunks[0]["ok"]

    def test_zero_chunk_stream_errors_cleanly_over_tcp(self, tcp_server):
        host, port = tcp_server
        with ServiceClient(host, port) as client:
            with pytest.raises(Exception) as excinfo:
                list(client.enumerate(SPEC, chunk_size=0))
            assert "chunk_size" in str(excinfo.value)
            assert client.result("count", SPEC) == 32  # connection survives

    def test_pump_survives_engine_exceptions(self):
        """An exploding batch is answered with error responses; the pump
        (and therefore the server) keeps serving the next batch."""

        class FlakyEngine(Engine):
            def __init__(self):
                super().__init__(workers=0)
                self.boom = True

            def execute(self, requests):
                if self.boom:
                    self.boom = False
                    raise RuntimeError("engine exploded")
                return super().execute(requests)

        engine = FlakyEngine()
        thread, (host, port) = _start_tcp_server(engine)
        try:
            with ServiceClient(host, port) as client:
                first = client.request("count", SPEC)
                assert not first["ok"] and first["error_type"] == "RuntimeError"
                assert "engine exploded" in first["error"]
                # The pump survived: the very next request succeeds.
                assert client.result("count", SPEC) == 32
                client.shutdown()
        finally:
            thread.join(timeout=10)
            engine.close()

    def test_cancel_matches_every_stream_with_that_id(self, tcp_server):
        """Two streams reusing one request id: cancel stops them both
        (the registry must not lose track of the survivor)."""
        import socket as socket_module

        host, port = tcp_server
        with socket_module.create_connection((host, port), timeout=15) as sock:
            stream_request = {
                "id": "dup",
                "op": "enumerate",
                "spec": BIG_SPEC,
                "stream": True,
                "chunk_size": 5,
            }
            reader = sock.makefile()
            sock.sendall(
                json.dumps(stream_request).encode() + b"\n"
                + json.dumps(stream_request).encode() + b"\n"
            )
            for _ in range(2):  # one chunk from each stream
                assert json.loads(reader.readline())["ok"]
            sock.sendall(
                json.dumps({"id": "kill", "op": "cancel", "target": "dup"}).encode()
                + b"\n"
            )
            cancelled = 0
            deadline = 200  # lines, not seconds: both streams are fast
            while cancelled < 2 and deadline:
                response = json.loads(reader.readline())
                if response.get("id") == "kill":
                    assert response["result"] == "cancelled"
                if (
                    response.get("id") == "dup"
                    and not response.get("ok")
                    and response.get("error_type") == "CancelledError"
                ):
                    cancelled += 1
                deadline -= 1
            assert cancelled == 2, "both duplicate-id streams must be cancelled"
            # And the connection still serves regular requests.
            sock.sendall(
                json.dumps({"id": "after", "op": "count", "spec": SPEC}).encode()
                + b"\n"
            )
            while True:
                response = json.loads(reader.readline())
                if response.get("id") == "after":
                    assert response["ok"] and response["result"] == 32
                    break

    def test_paused_stream_survives_interleaved_requests(self, tcp_server):
        """Other requests on the same client while a stream generator is
        paused must not swallow the stream's in-flight chunks."""
        host, port = tcp_server
        with ServiceClient(host, port) as client:
            expected = list(client.enumerate(SPEC, chunk_size=50))
            stream = client.enumerate(SPEC, chunk_size=4)
            head = [next(stream) for _ in range(2)]
            # Interleave: send() reads the socket and must buffer (not
            # drop) any stream chunks it encounters.
            assert client.result("count", SPEC) == 32
            rest = list(stream)
        assert head + rest == expected

    def test_slow_reader_does_not_stall_other_clients(self):
        """A client that stops reading its (large) response only stalls
        itself: response writes are detached from the batching pump."""
        import socket as socket_module
        import time as time_module

        engine = Engine(workers=0)
        thread, (host, port) = _start_tcp_server(engine, write_timeout=5.0)
        try:
            slow = socket_module.create_connection((host, port), timeout=60)
            slow.setsockopt(socket_module.SOL_SOCKET, socket_module.SO_RCVBUF, 4096)
            slow.sendall(
                json.dumps(
                    {"id": "s", "op": "sample", "spec": SPEC, "k": 40_000, "seed": 1}
                ).encode()
                + b"\n"
            )
            time_module.sleep(1.5)  # execution done; the write now stalls
            started = time_module.perf_counter()
            with ServiceClient(host, port) as quick:
                assert quick.result("ping") == "pong"
                assert quick.result("count", SPEC) == 32
            elapsed = time_module.perf_counter() - started
            assert elapsed < 2.0, (
                f"other clients stalled {elapsed:.1f}s behind a slow reader"
            )
            slow.close()
            with ServiceClient(host, port) as client:
                client.shutdown()
        finally:
            thread.join(timeout=15)
            engine.close()

    def test_limit_terminated_stream_is_resumable(self, tcp_server):
        """A --limit-bounded stream's final chunk carries the resume
        cursor; continuing from it completes the enumeration exactly."""
        host, port = tcp_server
        with ServiceClient(host, port) as client:
            expected = list(client.enumerate(SPEC, chunk_size=50))
            first = list(client.enumerate(SPEC, limit=10, chunk_size=5))
            cursor = client.last_cursor
            assert len(first) == 10 and cursor is not None
            rest = list(client.enumerate(SPEC, cursor=cursor, chunk_size=50))
        assert first + rest == expected

    def test_connection_cap_refuses_politely(self):
        import socket as socket_module

        engine = Engine(workers=0)
        thread, (host, port) = _start_tcp_server(engine, max_connections=2)
        try:
            first = ServiceClient(host, port)
            second = ServiceClient(host, port)
            assert first.result("ping") == "pong"  # both fully admitted
            assert second.result("ping") == "pong"
            with socket_module.create_connection((host, port), timeout=10) as sock:
                response = json.loads(sock.makefile().readline())
            assert not response["ok"]
            assert "too many connections" in response["error"]
            first.close()
            second.shutdown()
            second.close()
        finally:
            thread.join(timeout=10)
            engine.close()

    def test_graceful_shutdown_drains_pending(self):
        """Requests already queued when shutdown arrives are answered."""
        engine = Engine(workers=0)
        thread, (host, port) = _start_tcp_server(engine, batch_window=0.2)
        try:
            with ServiceClient(host, port) as client, ServiceClient(
                host, port
            ) as other:
                # Queue work, then shut down within the same batch window.
                other.sock.sendall(
                    json.dumps({"id": "w1", "op": "count", "spec": SPEC}).encode()
                    + b"\n"
                )
                client.shutdown()
                response = json.loads(other._read_line())
            assert response["id"] == "w1"
            assert response["ok"] and response["result"] == 32
        finally:
            thread.join(timeout=15)
            assert not thread.is_alive(), "server did not drain and exit"
            engine.close()

    def test_streaming_with_worker_pool(self):
        """Chunks page through the multiprocess engine's affinity worker
        and stay byte-identical to the in-process enumeration."""
        engine = Engine(workers=2)
        thread, (host, port) = _start_tcp_server(engine)
        try:
            with ServiceClient(host, port, timeout=30) as client:
                streamed = list(client.enumerate(SPEC, chunk_size=7))
                client.shutdown()
            ws = witness_set_from_spec(SPEC)
            from repro.service.protocol import render_witness

            assert streamed == [render_witness(w) for w in ws.enumerate()]
        finally:
            thread.join(timeout=15)
            engine.close()
