"""Unit tests for the unrolled DAG (Section 6.2 / Lemma 15)."""

from __future__ import annotations

import pytest

from repro.automata.nfa import EPSILON, NFA, word
from repro.automata.random_gen import random_nfa
from repro.core.unroll import (
    accepted_word_exists,
    lemma15_graph,
    unroll,
    unroll_trimmed,
)
from repro.errors import InvalidAutomatonError
from repro.papers.figures import figure1_nfa, figure2_dag_description


class TestUnroll:
    def test_layer_zero_is_initial(self, even_zeros_dfa):
        dag = unroll(even_zeros_dfa, 3)
        assert dag.layer(0) == frozenset({"even"})

    def test_forward_reachability(self, even_zeros_dfa):
        dag = unroll(even_zeros_dfa, 3)
        for t in range(1, 4):
            assert dag.layer(t) == frozenset({"even", "odd"})

    def test_unroll_strips_epsilon(self):
        nfa = NFA(["a", "b"], ["0"], [("a", EPSILON, "b"), ("b", "0", "b")], "a", ["b"])
        dag = unroll(nfa, 2)  # unroll() ε-eliminates before layering
        assert not dag.is_empty

    def test_dag_constructor_rejects_epsilon(self):
        from repro.core.unroll import UnrolledDAG

        nfa = NFA(["a", "b"], ["0"], [("a", EPSILON, "b")], "a", ["b"])
        with pytest.raises(InvalidAutomatonError):
            UnrolledDAG(nfa, 2, trimmed=False)

    def test_rejects_negative_length(self, even_zeros_dfa):
        with pytest.raises(ValueError):
            unroll(even_zeros_dfa, -1)

    def test_final_states(self, even_zeros_dfa):
        dag = unroll(even_zeros_dfa, 2)
        assert dag.final_states == frozenset({"even"})

    def test_is_empty(self):
        nfa = NFA.single_word(word("ab"))
        assert unroll(nfa.without_epsilon(), 3).is_empty
        assert not unroll(nfa.without_epsilon(), 2).is_empty

    def test_predecessor_sets(self, even_zeros_dfa):
        dag = unroll(even_zeros_dfa, 2)
        preds = dag.predecessor_sets(1, frozenset({"odd"}))
        assert preds == {"0": frozenset({"even"})}

    def test_successors_restricted_to_live(self):
        nfa = NFA(
            ["s", "f", "x"],
            ["0"],
            [("s", "0", "f"), ("f", "0", "x")],
            "s",
            ["f"],
        )
        dag = unroll_trimmed(nfa, 1)
        assert list(dag.successors(0, "s")) == [("0", "f")]
        assert list(dag.successors(1, "f")) == []


class TestTrimmed:
    def test_trims_non_coreachable(self):
        nfa = NFA(
            ["s", "good", "dead"],
            ["0"],
            [("s", "0", "good"), ("s", "0", "dead")],
            "s",
            ["good"],
        )
        dag = unroll_trimmed(nfa, 1)
        assert dag.layer(1) == frozenset({"good"})
        # Untrimmed keeps both.
        assert unroll(nfa, 1).layer(1) == frozenset({"good", "dead"})

    def test_every_live_state_has_live_successor(self, rng):
        for _ in range(8):
            nfa = random_nfa(6, rng=rng, density=1.5)
            dag = unroll_trimmed(nfa, 5)
            for t in range(dag.n):
                for state in dag.layer(t):
                    assert list(dag.successors(t, state)), (t, state)

    def test_empty_when_no_witness(self):
        nfa = NFA.empty_language("01")
        dag = unroll_trimmed(nfa, 4)
        assert dag.is_empty
        assert all(not dag.layer(t) for t in range(1, 5))

    def test_vertex_and_edge_counts(self, even_zeros_dfa):
        dag = unroll_trimmed(even_zeros_dfa, 2)
        assert dag.vertex_count() == 1 + 2 + 1  # even / even,odd / even
        assert dag.edge_count() == 2 + 2


class TestExistence:
    def test_accepted_word_exists(self, even_zeros_dfa):
        for n in range(5):
            assert accepted_word_exists(even_zeros_dfa, n)

    def test_no_word_of_wrong_length(self):
        nfa = NFA.single_word(word("abc"))
        assert accepted_word_exists(nfa.without_epsilon(), 3)
        assert not accepted_word_exists(nfa.without_epsilon(), 2)

    def test_length_zero(self, even_zeros_dfa):
        assert accepted_word_exists(even_zeros_dfa, 0)
        shifted = NFA(
            even_zeros_dfa.states,
            even_zeros_dfa.alphabet,
            even_zeros_dfa.transitions,
            "even",
            ["odd"],
        )
        assert not accepted_word_exists(shifted, 0)


class TestFigure2:
    """Experiment F2: the paper's Figure 2 structure."""

    def test_layers_match_figure(self):
        dag, start, finals = lemma15_graph(figure1_nfa(), 3)
        expected = figure2_dag_description()
        for t, states in expected.items():
            assert dag.layer(t) == frozenset(states), f"layer {t}"
        assert start == ("q0", 0)
        assert finals == frozenset({("qF", 3)})

    def test_q5_pruned(self):
        dag, _, _ = lemma15_graph(figure1_nfa(), 3)
        for t in range(4):
            assert "q5" not in dag.layer(t)
