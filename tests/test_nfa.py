"""Unit tests for repro.automata.nfa."""

from __future__ import annotations

import pickle

import pytest

from repro.automata.nfa import EPSILON, NFA, word, word_str
from repro.errors import InvalidAutomatonError


class TestConstruction:
    def test_basic_properties(self, even_zeros_dfa):
        assert even_zeros_dfa.num_states == 2
        assert even_zeros_dfa.num_transitions == 4
        assert even_zeros_dfa.alphabet == frozenset({"0", "1"})
        assert even_zeros_dfa.initial == "even"
        assert even_zeros_dfa.finals == frozenset({"even"})

    def test_rejects_unknown_initial(self):
        with pytest.raises(InvalidAutomatonError):
            NFA(["a"], ["0"], [], "missing", [])

    def test_rejects_unknown_final(self):
        with pytest.raises(InvalidAutomatonError):
            NFA(["a"], ["0"], [], "a", ["missing"])

    def test_rejects_transition_with_unknown_source(self):
        with pytest.raises(InvalidAutomatonError):
            NFA(["a"], ["0"], [("ghost", "0", "a")], "a", [])

    def test_rejects_transition_with_unknown_target(self):
        with pytest.raises(InvalidAutomatonError):
            NFA(["a"], ["0"], [("a", "0", "ghost")], "a", [])

    def test_rejects_symbol_outside_alphabet(self):
        with pytest.raises(InvalidAutomatonError):
            NFA(["a"], ["0"], [("a", "9", "a")], "a", [])

    def test_rejects_epsilon_in_alphabet(self):
        with pytest.raises(InvalidAutomatonError):
            NFA(["a"], [EPSILON], [], "a", [])

    def test_epsilon_transitions_allowed(self):
        nfa = NFA(["a", "b"], ["0"], [("a", EPSILON, "b")], "a", ["b"])
        assert nfa.has_epsilon
        assert nfa.accepts(())

    def test_duplicate_transitions_collapse(self):
        nfa = NFA(["a"], ["0"], [("a", "0", "a"), ("a", "0", "a")], "a", ["a"])
        assert nfa.num_transitions == 1

    def test_equality_and_hash(self, even_zeros_dfa):
        clone = NFA(
            even_zeros_dfa.states,
            even_zeros_dfa.alphabet,
            even_zeros_dfa.transitions,
            even_zeros_dfa.initial,
            even_zeros_dfa.finals,
        )
        assert clone == even_zeros_dfa
        assert hash(clone) == hash(even_zeros_dfa)

    def test_inequality(self, even_zeros_dfa, abc_chain_nfa):
        assert even_zeros_dfa != abc_chain_nfa

    def test_epsilon_singleton_survives_pickle(self):
        assert pickle.loads(pickle.dumps(EPSILON)) is EPSILON


class TestWordHelpers:
    def test_word_from_string(self):
        assert word("abc") == ("a", "b", "c")

    def test_word_str_roundtrip(self):
        assert word_str(word("0110")) == "0110"

    def test_word_of_empty(self):
        assert word("") == ()


class TestAcceptance:
    def test_accepts_even_zeros(self, even_zeros_dfa):
        assert even_zeros_dfa.accepts(word("0101100"))  # 4 zeros... count: 0,1,0,1,1,0,0 -> 4 zeros
        assert not even_zeros_dfa.accepts(word("0"))
        assert even_zeros_dfa.accepts(word(""))

    def test_accepts_with_nondeterminism(self, endswith_one_nfa):
        assert endswith_one_nfa.accepts(word("0001"))
        assert endswith_one_nfa.accepts(word("1000"))
        assert not endswith_one_nfa.accepts(word("0000"))

    def test_rejects_symbol_not_in_alphabet_word(self, even_zeros_dfa):
        assert not even_zeros_dfa.accepts(word("2"))

    def test_epsilon_in_word_rejected(self, even_zeros_dfa):
        with pytest.raises(InvalidAutomatonError):
            even_zeros_dfa.accepts((EPSILON,))

    def test_empty_language(self):
        nfa = NFA.empty_language("01")
        for w in ["", "0", "1", "01"]:
            assert not nfa.accepts(word(w))

    def test_only_empty_word(self):
        nfa = NFA.only_empty_word("01")
        assert nfa.accepts(())
        assert not nfa.accepts(word("0"))

    def test_single_word(self):
        nfa = NFA.single_word(word("aba"))
        assert nfa.accepts(word("aba"))
        assert not nfa.accepts(word("ab"))
        assert not nfa.accepts(word("abab"))

    def test_full_language(self):
        nfa = NFA.full_language("ab")
        for w in ["", "a", "bbb", "abab"]:
            assert nfa.accepts(word(w))


class TestRuns:
    def test_count_accepting_runs_matches_enumeration(self, endswith_one_nfa):
        w = word("1101")
        runs = list(endswith_one_nfa.accepting_runs(w))
        assert len(runs) == endswith_one_nfa.count_accepting_runs(w)
        assert len(runs) == 3  # one per '1'

    def test_runs_are_valid(self, endswith_one_nfa):
        w = word("101")
        for run in endswith_one_nfa.accepting_runs(w):
            assert run[0] == endswith_one_nfa.initial
            assert run[-1] in endswith_one_nfa.finals
            for i, symbol in enumerate(w):
                assert run[i + 1] in endswith_one_nfa.successors(run[i], symbol)

    def test_run_limit(self, endswith_one_nfa):
        runs = list(endswith_one_nfa.accepting_runs(word("1111"), limit=2))
        assert len(runs) == 2

    def test_unambiguous_has_single_run(self, even_zeros_dfa):
        assert even_zeros_dfa.count_accepting_runs(word("0011")) == 1

    def test_runs_require_epsilon_free(self):
        nfa = NFA(["a", "b"], ["0"], [("a", EPSILON, "b")], "a", ["b"])
        with pytest.raises(InvalidAutomatonError):
            list(nfa.accepting_runs(()))


class TestEpsilonRemoval:
    def test_removal_preserves_language(self):
        nfa = NFA(
            ["s", "m", "f"],
            ["a", "b"],
            [("s", EPSILON, "m"), ("m", "a", "f"), ("s", "b", "f")],
            "s",
            ["f"],
        )
        stripped = nfa.without_epsilon()
        assert not stripped.has_epsilon
        for w in ["a", "b", "ab", ""]:
            assert nfa.accepts(word(w)) == stripped.accepts(word(w))

    def test_epsilon_to_final_makes_source_final(self):
        nfa = NFA(["s", "f"], ["a"], [("s", EPSILON, "f")], "s", ["f"])
        stripped = nfa.without_epsilon()
        assert stripped.accepts(())

    def test_epsilon_chain(self):
        nfa = NFA(
            ["1", "2", "3", "4"],
            ["a"],
            [("1", EPSILON, "2"), ("2", EPSILON, "3"), ("3", "a", "4")],
            "1",
            ["4"],
        )
        stripped = nfa.without_epsilon()
        assert stripped.accepts(word("a"))
        assert not stripped.accepts(())

    def test_noop_when_already_free(self, even_zeros_dfa):
        assert even_zeros_dfa.without_epsilon() is even_zeros_dfa


class TestStructure:
    def test_reachable_states(self):
        nfa = NFA(
            ["a", "b", "island"],
            ["0"],
            [("a", "0", "b"), ("island", "0", "island")],
            "a",
            ["b"],
        )
        assert nfa.reachable_states() == frozenset({"a", "b"})

    def test_coreachable_states(self):
        nfa = NFA(
            ["a", "b", "dead"],
            ["0"],
            [("a", "0", "b"), ("a", "0", "dead")],
            "a",
            ["b"],
        )
        assert nfa.coreachable_states() == frozenset({"a", "b"})

    def test_trim_removes_useless(self):
        nfa = NFA(
            ["a", "b", "dead", "island"],
            ["0"],
            [("a", "0", "b"), ("a", "0", "dead"), ("island", "0", "b")],
            "a",
            ["b"],
        )
        trimmed = nfa.trim()
        assert trimmed.states == frozenset({"a", "b"})
        assert trimmed.accepts(word("0"))

    def test_trim_empty_language(self):
        nfa = NFA(["a", "b"], ["0"], [("a", "0", "b")], "a", [])
        trimmed = nfa.trim()
        assert trimmed.num_states == 1
        assert not trimmed.finals

    def test_trim_preserves_language(self, endswith_one_nfa):
        trimmed = endswith_one_nfa.trim()
        for w in ["", "0", "1", "010", "111"]:
            assert trimmed.accepts(word(w)) == endswith_one_nfa.accepts(word(w))

    def test_renumbered_is_isomorphic(self, endswith_one_nfa):
        renamed = endswith_one_nfa.renumbered()
        assert renamed.num_states == endswith_one_nfa.num_states
        assert renamed.num_transitions == endswith_one_nfa.num_transitions
        for w in ["", "0", "1", "0101"]:
            assert renamed.accepts(word(w)) == endswith_one_nfa.accepts(word(w))

    def test_renumbered_initial_is_zero(self, even_zeros_dfa):
        assert even_zeros_dfa.renumbered().initial == 0

    def test_map_symbols(self, even_zeros_dfa):
        swapped = even_zeros_dfa.map_symbols({"0": "1", "1": "0"})
        # Swapping roles: now even number of '1's.
        assert swapped.accepts(word("11"))
        assert not swapped.accepts(word("1"))

    def test_map_symbols_rejects_non_injective(self, even_zeros_dfa):
        with pytest.raises(InvalidAutomatonError):
            even_zeros_dfa.map_symbols({"0": "x", "1": "x"})

    def test_is_deterministic(self, even_zeros_dfa, endswith_one_nfa):
        assert even_zeros_dfa.is_deterministic()
        assert not endswith_one_nfa.is_deterministic()

    def test_with_unique_final_preserves_language(self, endswith_one_nfa):
        unique = endswith_one_nfa.with_unique_final()
        assert not unique.has_epsilon
        for w in ["", "0", "1", "10", "0110"]:
            assert unique.accepts(word(w)) == endswith_one_nfa.accepts(word(w))

    def test_reachable_sets_by_layer(self, endswith_one_nfa):
        trajectory = endswith_one_nfa.reachable_sets_by_layer(word("01"))
        assert trajectory[0] == frozenset({"wait"})
        assert trajectory[1] == frozenset({"wait"})
        assert trajectory[2] == frozenset({"wait", "done"})
