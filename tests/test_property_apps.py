"""Hypothesis property tests across the Section 4 applications."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.automata.operations import words_of_length
from repro.bdd.builders import obdd_from_formula, random_nobdd
from repro.bdd.builders import FormulaNode, conj, disj, neg, var
from repro.bdd.nobdd import EvalNobddRelation
from repro.bdd.obdd import EvalObddRelation
from repro.core.exact import count_words_exact
from repro.dnf.formulas import DNFFormula, DNFTerm
from repro.dnf.relation import dnf_to_nfa
from repro.graphdb.graph import GraphDatabase
from repro.graphdb.rpq import RPQ, compile_rpq, decode_path
from repro.spanners.eva import extraction_eva
from repro.spanners.evaluation import SpannerEvaluator

ORDER3 = ("a", "b", "c")


@st.composite
def formulas(draw, depth: int = 2):
    if depth == 0:
        return var(draw(st.sampled_from(ORDER3)))
    shape = draw(st.sampled_from(["and", "or", "not", "leaf"]))
    if shape == "leaf":
        return var(draw(st.sampled_from(ORDER3)))
    if shape == "not":
        return neg(draw(formulas(depth=depth - 1)))
    left = draw(formulas(depth=depth - 1))
    right = draw(formulas(depth=depth - 1))
    return conj(left, right) if shape == "and" else disj(left, right)


@st.composite
def dnf_formulas(draw):
    num_variables = draw(st.integers(2, 6))
    num_terms = draw(st.integers(1, 4))
    terms = []
    for _ in range(num_terms):
        width = draw(st.integers(1, min(3, num_variables)))
        variables = draw(
            st.lists(
                st.integers(0, num_variables - 1),
                min_size=width,
                max_size=width,
                unique=True,
            )
        )
        literals = {index: draw(st.integers(0, 1)) for index in variables}
        terms.append(DNFTerm.from_dict(literals))
    return DNFFormula(num_variables=num_variables, terms=tuple(terms))


@st.composite
def small_graphs(draw):
    num_vertices = draw(st.integers(2, 5))
    vertices = list(range(num_vertices))
    edges = []
    for source in vertices:
        for label in "ab":
            targets = draw(st.lists(st.sampled_from(vertices), max_size=2, unique=True))
            edges.extend((source, label, target) for target in targets)
    return GraphDatabase(vertices, edges)


class TestObddProperties:
    @given(formulas())
    @settings(max_examples=50, deadline=None)
    def test_obdd_agrees_with_formula(self, formula):
        diagram = obdd_from_formula(formula, ORDER3)
        for mask in range(8):
            sigma = {v: (mask >> i) & 1 for i, v in enumerate(ORDER3)}
            assert diagram.evaluate(sigma) == formula.evaluate(sigma)

    @given(formulas())
    @settings(max_examples=50, deadline=None)
    def test_obdd_count_equals_truth_table(self, formula):
        diagram = obdd_from_formula(formula, ORDER3)
        compiled = EvalObddRelation().compile(diagram)
        brute = sum(
            formula.evaluate({v: (mask >> i) & 1 for i, v in enumerate(ORDER3)})
            for mask in range(8)
        )
        assert count_words_exact(compiled.nfa, compiled.length) == brute


class TestNobddProperties:
    @given(st.integers(0, 40))
    @settings(max_examples=25, deadline=None)
    def test_random_nobdd_count_matches_semantics(self, seed):
        nobdd = random_nobdd(4, branches=3, rng=seed)
        compiled = EvalNobddRelation().compile(nobdd)
        brute = sum(
            nobdd.evaluate({f"x{i}": (mask >> i) & 1 for i in range(4)})
            for mask in range(16)
        )
        assert count_words_exact(compiled.nfa, compiled.length) == brute


class TestDnfProperties:
    @given(dnf_formulas())
    @settings(max_examples=50, deadline=None)
    def test_compiled_language_is_model_set(self, phi):
        nfa = dnf_to_nfa(phi)
        models = {tuple(str(bit) for bit in m) for m in phi.models_brute()}
        assert set(words_of_length(nfa, phi.num_variables)) == models

    @given(dnf_formulas())
    @settings(max_examples=30, deadline=None)
    def test_inclusion_exclusion_agrees(self, phi):
        assert phi.count_models_brute() == phi.count_models_inclusion_exclusion()


class TestRpqProperties:
    @given(small_graphs(), st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_compiled_words_decode_to_real_paths(self, graph, n):
        vertices = sorted(graph.vertices)
        source, target = vertices[0], vertices[-1]
        nfa = compile_rpq(graph, RPQ("(a|b)*"), source, target)
        for w in words_of_length(nfa, n):
            path = decode_path(source, w)
            assert path.is_path_of(graph)
            assert path.target == target

    @given(small_graphs())
    @settings(max_examples=30, deadline=None)
    def test_unconstrained_count_equals_walk_dp(self, graph):
        """Paths under (a|b)* = all length-n walks source→target."""
        vertices = sorted(graph.vertices)
        source, target = vertices[0], vertices[-1]
        n = 3
        nfa = compile_rpq(graph, RPQ("(a|b)*"), source, target)
        # Direct DP over labeled walks (edges are distinct by (label, to)).
        counts = {source: 1}
        for _ in range(n):
            nxt: dict = {}
            for vertex, ways in counts.items():
                for _, neighbor in graph.out_edges(vertex):
                    nxt[neighbor] = nxt.get(neighbor, 0) + ways
            counts = nxt
        assert count_words_exact(nfa, n) == counts.get(target, 0)


class TestSpannerProperties:
    @given(st.text(alphabet="abcd", min_size=0, max_size=14))
    @settings(max_examples=40, deadline=None)
    def test_extraction_matches_string_scan(self, document):
        """Spanner answers = what a direct string scan finds."""
        eva = extraction_eva("ab", "X", content_symbols="cd", alphabet="abcd")
        evaluator = SpannerEvaluator(eva, document, rng=0)
        found = {
            (m["X"].start, m["X"].end) for m in evaluator.mappings()
        }
        expected = set()
        for i in range(len(document) - 1):
            if document[i : i + 2] == "ab":
                start = i + 2
                end = start
                while end < len(document) and document[end] in "cd":
                    end += 1
                for stop in range(start + 1, end + 1):
                    expected.add((start + 1, stop + 1))  # 1-indexed spans
        assert found == expected
