"""Differential fuzzing: every counting / enumeration / sampling path
must agree on every instance.

The paper gives several independent routes to the same numbers — the
run-count DP, the subset counter, brute-force Σⁿ sweeps, Algorithm 1
enumeration (streamed and paged), the per-length spectrum — plus the
service layer's snapshot/store round-trips, which must be *byte*
faithful.  This suite generates seeded random instances (regexes and
NFAs, including ε-heavy, empty-language, unary and non-ASCII alphabets)
and cross-checks all of them against each other for n = 0..8.

Everything is deterministic (fixed seeds, plain ``random.Random``), so a
failure here is a real cross-path mismatch, never flake.
"""

from __future__ import annotations

import random

import pytest

from repro.api import WitnessSet
from repro.automata import EPSILON, NFA
from repro.automata.random_gen import random_nfa, random_ufa
from repro.service import KernelStore
from repro.service.protocol import render_witness

SEED = 20190621

ALPHABETS = ["ab", "01", "αβ", "a", "abc"]  # incl. non-ASCII and unary

#: Lengths swept per instance (0 is the paper's k = 0 corner case).
LENGTHS = (0, 1, 2, 3, 5, 8)


# ----------------------------------------------------------------------
# Instance generators (all seeded, all deterministic)
# ----------------------------------------------------------------------


def random_regex(rng: random.Random, alphabet: str, depth: int = 3) -> str:
    """A random regex over ``alphabet`` using the library's syntax."""
    if depth == 0 or rng.random() < 0.3:
        return rng.choice(alphabet)
    shape = rng.random()
    if shape < 0.35:
        return random_regex(rng, alphabet, depth - 1) + random_regex(
            rng, alphabet, depth - 1
        )
    if shape < 0.6:
        return (
            "("
            + random_regex(rng, alphabet, depth - 1)
            + "|"
            + random_regex(rng, alphabet, depth - 1)
            + ")"
        )
    if shape < 0.85:
        return "(" + random_regex(rng, alphabet, depth - 1) + ")*"
    return "(" + random_regex(rng, alphabet, depth - 1) + ")?"


def epsilon_heavy_nfa(rng: random.Random, alphabet: str, states: int = 7) -> NFA:
    """A random NFA where roughly half the transitions are ε-moves."""
    ids = list(range(states))
    transitions = []
    for source in ids:
        for _ in range(rng.randint(1, 3)):
            target = rng.choice(ids)
            if rng.random() < 0.5:
                transitions.append((source, EPSILON, target))
            else:
                transitions.append((source, rng.choice(alphabet), target))
    finals = rng.sample(ids, rng.randint(1, max(1, states // 2)))
    return NFA(ids, list(alphabet), transitions, 0, finals)


def regex_instances() -> list[tuple[str, str, str]]:
    cases = []
    rng = random.Random(SEED)
    for alphabet in ALPHABETS:
        for index in range(8):
            pattern = random_regex(rng, alphabet)
            cases.append((f"re-{alphabet}-{index}", pattern, alphabet))
    return cases


def nfa_instances() -> list[tuple[str, NFA]]:
    cases: list[tuple[str, NFA]] = []
    for index in range(6):
        cases.append(
            (
                f"nfa-ambiguous-{index}",
                random_nfa(6, rng=SEED + index, density=1.8),
            )
        )
        cases.append(
            (
                f"nfa-ufa-{index}",
                random_ufa(8, rng=SEED + index, completeness=0.85),
            )
        )
        cases.append(
            (
                f"nfa-epsilon-{index}",
                epsilon_heavy_nfa(random.Random(SEED + index), "ab"),
            )
        )
    cases.append(
        (
            "nfa-nonascii",
            random_nfa(6, alphabet=("α", "β"), rng=SEED, density=1.6),
        )
    )
    cases.append(
        (
            "nfa-unary",
            random_nfa(5, alphabet=("a",), rng=SEED + 1, density=1.2),
        )
    )
    # Empty language: the only final state is unreachable.
    cases.append(
        (
            "nfa-empty-language",
            NFA([0, 1, 2], "ab", [(0, "a", 0), (0, "b", 0), (1, "a", 2)], 0, [2]),
        )
    )
    # ε-cycle into the final state: witnesses exist at every length.
    cases.append(
        (
            "nfa-epsilon-cycle",
            NFA(
                [0, 1, 2],
                "ab",
                [(0, EPSILON, 1), (1, "a", 2), (2, EPSILON, 0), (2, "b", 2)],
                0,
                [2],
            ),
        )
    )
    return cases


def _witness_sets(case, n, store=False):
    kind = case[0]
    if kind.startswith("re"):
        _, pattern, alphabet = case
        return WitnessSet.from_regex(pattern, n, alphabet=alphabet, store=store)
    return WitnessSet.from_nfa(case[1], n, store=store)


# ----------------------------------------------------------------------
# The differential checks
# ----------------------------------------------------------------------


def _cross_check(ws: WitnessSet) -> int:
    """count() vs naive vs enumeration vs spectrum — all must agree."""
    count = ws.count()
    assert count == ws.count("naive"), "count(exact) != count(naive)"
    enumerated = list(ws.enumerate())
    assert count == len(enumerated), "count != len(list(enumerate()))"
    assert len(set(map(render_witness, enumerated))) == len(enumerated), (
        "enumeration repeated a witness"
    )
    assert count == ws.spectrum(ws.n)[ws.n], "count != spectrum(n)[n]"
    # Paged enumeration must equal the streamed order, at any page size.
    paged: list = []
    cursor = None
    while True:
        page, cursor = ws.enumerate_page(3, cursor)
        paged.extend(page)
        if cursor is None:
            break
    assert list(map(render_witness, paged)) == list(map(render_witness, enumerated)), (
        "paged enumeration diverged from streamed enumeration"
    )
    return count


@pytest.mark.parametrize("case", regex_instances(), ids=lambda c: c[0])
def test_regex_cross_backend(case):
    for n in LENGTHS:
        _cross_check(_witness_sets(case, n))


@pytest.mark.parametrize("case", nfa_instances(), ids=lambda c: c[0])
def test_nfa_cross_backend(case):
    for n in LENGTHS:
        _cross_check(_witness_sets(case, n))


@pytest.mark.parametrize(
    "case", regex_instances()[:8] + nfa_instances()[:8], ids=lambda c: c[0]
)
def test_store_round_trip_is_byte_identical(case, tmp_path):
    """Snapshot/store round-trips: counts and seeded sample streams of a
    store-restored witness set are byte-identical to fresh compilation."""
    store = KernelStore(tmp_path / "kernels")
    for n in (3, 5, 8):
        fresh = _witness_sets(case, n)
        cold = _witness_sets(case, n, store=store)
        assert cold.count() == fresh.count()
        warm = _witness_sets(case, n, store=store)
        assert warm.count() == fresh.count()
        assert warm.spectrum(n) == fresh.spectrum(n)
        if fresh.count():
            draws_fresh = fresh.sample_batch(6, seed=7, use_substreams=True)
            draws_cold = cold.sample_batch(6, seed=7, use_substreams=True)
            draws_warm = warm.sample_batch(6, seed=7, use_substreams=True)
            rendered = [render_witness(w) for w in draws_fresh]
            assert [render_witness(w) for w in draws_cold] == rendered
            assert [render_witness(w) for w in draws_warm] == rendered
            assert list(map(render_witness, warm.enumerate())) == list(
                map(render_witness, fresh.enumerate())
            )


@pytest.mark.parametrize("index", range(12))
def test_intersection_matches_brute_force(index):
    """Lazy-product plans vs the dumbest possible intersection: filter
    one language's brute-force words through the other automaton."""
    from repro.automata.regex import compile_regex
    from repro.baselines.naive import brute_force_words

    rng = random.Random(SEED + index)
    alphabet = rng.choice(["ab", "01", "αβ"])
    left = random_regex(rng, alphabet)
    right = random_regex(rng, alphabet)
    right_nfa = compile_regex(right, alphabet=list(alphabet)).without_epsilon()
    for n in (0, 2, 4, 6):
        ws = WitnessSet.from_intersection(
            compile_regex(left, alphabet=list(alphabet)),
            compile_regex(right, alphabet=list(alphabet)),
            n,
            store=False,
        )
        left_nfa = compile_regex(left, alphabet=list(alphabet)).without_epsilon()
        expected = sorted(
            w for w in brute_force_words(left_nfa, n) if right_nfa.accepts(w)
        )
        assert ws.count() == len(expected), (left, right, n)
        assert ws.count("naive") == len(expected), (left, right, n)
        assert sorted(ws.enumerate()) == expected, (left, right, n)
        # Paged (service) route over the plan-lowered kernel.
        paged: list = []
        cursor = None
        while True:
            page, cursor = ws.enumerate_page(2, cursor)
            paged.extend(page)
            if cursor is None:
                break
        assert sorted(paged) == expected, (left, right, n)


@pytest.mark.parametrize("index", range(6))
def test_dnf_paths_agree(index):
    """DNF witness sets: facade count vs naive vs enumeration."""
    rng = random.Random(SEED + index)
    num_variables = rng.randint(2, 6)
    clauses = []
    for _ in range(rng.randint(1, 4)):
        picked = rng.sample(range(num_variables), rng.randint(1, num_variables))
        clauses.append(
            " & ".join(
                ("!" if rng.random() < 0.5 else "") + f"x{v}" for v in picked
            )
        )
    formula = " | ".join(clauses)
    ws = WitnessSet.from_dnf(formula, store=False)
    brute = sum(
        1
        for bits in range(2**num_variables)
        if any(
            all(
                (bits >> v) & 1 == (0 if literal.startswith("!") else 1)
                for literal in clause.split(" & ")
                for v in [int(literal.lstrip("!").lstrip("x"))]
            )
            for clause in clauses
        )
    )
    assert ws.count() == brute, formula
    assert ws.count("naive") == brute, formula
    assert len(list(ws.enumerate())) == brute, formula


def test_seed_alias_matches_rng():
    """sample(seed=7) and sample(rng=7) draw identical streams, on both
    the facade and the deprecated top-level shims."""
    import repro

    ws = WitnessSet.from_regex("(ab|ba)*(a|b)?", 9, alphabet="ab", store=False)
    assert ws.sample(5, rng=7) == ws.sample(5, seed=7)
    assert ws.sample_batch(5, rng=7) == ws.sample_batch(5, seed=7)
    assert ws.sample_batch(5, rng=7, use_substreams=True) == ws.sample_batch(
        5, seed=7, use_substreams=True
    )
    with pytest.raises(ValueError):
        ws.sample(2, rng=7, seed=7)
    with pytest.raises(TypeError):
        ws.sample(2, seed="seven")
    nfa = ws.stripped
    with pytest.warns(DeprecationWarning):
        assert repro.uniform_sample(nfa, 9, rng=3) == repro.uniform_sample(
            nfa, 9, seed=3
        )
    with pytest.warns(DeprecationWarning):
        assert repro.uniform_samples(nfa, 9, 4, rng=3) == repro.uniform_samples(
            nfa, 9, 4, seed=3
        )
