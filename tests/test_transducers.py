"""Unit tests for NL-transducers and the Lemma 13 compilation."""

from __future__ import annotations

import pytest

from repro.automata.operations import words_of_length
from repro.automata.unambiguous import is_unambiguous
from repro.core.transducers import (
    BLANK,
    CompilationReport,
    ConfigGraphTransducer,
    TMTransition,
    TuringTransducer,
    compile_to_nfa,
    outputs_brute_force,
)
from repro.errors import InvalidRelationInputError


def copy_transducer() -> ConfigGraphTransducer:
    """Outputs the input string itself (the identity relation)."""

    def initial(x):
        return ("at", 0)

    def step(x, config):
        _, position = config
        if position < len(x):
            yield x[position], ("at", position + 1)

    def accepting(x, config):
        return config[1] == len(x)

    def bound(x):
        return len(x) + 2

    return ConfigGraphTransducer(initial, step, accepting, bound, name="copy")


def subsets_transducer() -> ConfigGraphTransducer:
    """On input of length n, outputs every binary word of length n."""

    def initial(x):
        return ("at", 0)

    def step(x, config):
        _, position = config
        if position < len(x):
            yield "0", ("at", position + 1)
            yield "1", ("at", position + 1)

    def accepting(x, config):
        return config[1] == len(x)

    def bound(x):
        return len(x) + 2

    return ConfigGraphTransducer(initial, step, accepting, bound, name="subsets")


class TestConfigGraphCompilation:
    def test_copy_language(self):
        nfa = compile_to_nfa(copy_transducer(), "abba")
        assert words_of_length(nfa, 4) == [tuple("abba")]

    def test_subsets_language(self):
        nfa = compile_to_nfa(subsets_transducer(), "xxx")
        assert len(words_of_length(nfa, 3)) == 8

    def test_matches_brute_force_oracle(self):
        transducer = subsets_transducer()
        x = "xx"
        nfa = compile_to_nfa(transducer, x)
        compiled = {w for w in words_of_length(nfa, 2)}
        direct = outputs_brute_force(transducer, x)
        assert compiled == direct

    def test_unambiguous_transducer_gives_ufa(self):
        # The subsets transducer has ONE run per output — a UL-transducer.
        nfa = compile_to_nfa(subsets_transducer(), "xxxx")
        assert is_unambiguous(nfa)

    def test_report_populated(self):
        report = CompilationReport()
        compile_to_nfa(copy_transducer(), "abc", report=report)
        assert report.configurations == 4
        assert report.nfa_states > 0

    def test_bound_enforced(self):
        def runaway_step(x, config):
            yield "0", ("at", config[1] + 1)  # never stops

        transducer = ConfigGraphTransducer(
            initial=lambda x: ("at", 0),
            step=runaway_step,
            accepting=lambda x, c: False,
            bound=lambda x: 5,
            name="runaway",
        )
        with pytest.raises(InvalidRelationInputError):
            compile_to_nfa(transducer, "xx")


def parity_tm() -> TuringTransducer:
    """Tape-level machine: copies input and accepts (identity over {0,1}).

    Deliberately simple — the tape-level model's value is demonstrating
    the literal Lemma 13 pipeline, not writing large machines.
    """
    transitions = {}
    for bit in "01":
        # Read a bit, emit it, move input head right; work tape untouched.
        transitions[("scan", bit, BLANK)] = [
            TMTransition("scan", BLANK, +1, 0, output=bit)
        ]
    transitions[("scan", "⊣", BLANK)] = [TMTransition("accept", BLANK, 0, 0)]
    return TuringTransducer(
        states=["scan", "accept"],
        initial_state="scan",
        accepting_states=["accept"],
        transitions=transitions,
        name="identity TM",
    )


class TestTuringTransducer:
    def test_identity_language(self):
        nfa = compile_to_nfa(parity_tm(), "0110")
        assert words_of_length(nfa, 4) == [tuple("0110")]

    def test_config_bound_polynomial_shape(self):
        tm = parity_tm()
        small = tm.config_bound("01")
        large = tm.config_bound("01" * 20)
        assert small < large

    def test_tape_length_logarithmic(self):
        tm = parity_tm()
        assert tm.tape_length("x" * 1000) <= 2 + 12  # ~ log2(1002) + 2

    def test_initial_config_shape(self):
        tm = parity_tm()
        state, input_pos, work_pos, tape = tm.initial_config("abc")
        assert state == "scan"
        assert input_pos == 0 and work_pos == 0
        assert all(cell == BLANK for cell in tape)
