"""Tests for JSON round-trips and DOT export."""

from __future__ import annotations

import json

import pytest

from repro.automata.nfa import EPSILON, NFA
from repro.automata.random_gen import random_nfa
from repro.automata.serialization import (
    nfa_from_json,
    nfa_to_dot,
    nfa_to_json,
    unrolled_dag_to_dot,
)
from repro.core.unroll import unroll_trimmed
from repro.errors import InvalidAutomatonError
from repro.papers.figures import figure1_nfa


class TestJsonRoundTrip:
    def test_simple(self, even_zeros_dfa):
        assert nfa_from_json(nfa_to_json(even_zeros_dfa)) == even_zeros_dfa

    def test_epsilon_edges(self):
        nfa = NFA(["a", "b"], ["0"], [("a", EPSILON, "b")], "a", ["b"])
        assert nfa_from_json(nfa_to_json(nfa)) == nfa

    def test_tuple_states(self):
        nfa = NFA(
            [("q", 0), ("q", 1)],
            ["x"],
            [(("q", 0), "x", ("q", 1))],
            ("q", 0),
            [("q", 1)],
        )
        assert nfa_from_json(nfa_to_json(nfa)) == nfa

    def test_frozenset_symbols(self):
        # The spanner evaluator's marker-set symbols.
        symbol = frozenset({("open", "x")})
        nfa = NFA(["a", "b"], [symbol, frozenset()], [("a", symbol, "b")], "a", ["b"])
        assert nfa_from_json(nfa_to_json(nfa)) == nfa

    def test_random_round_trips(self, rng):
        for _ in range(5):
            nfa = random_nfa(6, rng=rng)
            assert nfa_from_json(nfa_to_json(nfa)) == nfa

    def test_rejects_wrong_format(self):
        with pytest.raises(InvalidAutomatonError):
            nfa_from_json(json.dumps({"format": "something-else"}))

    def test_rejects_wrong_version(self, even_zeros_dfa):
        document = json.loads(nfa_to_json(even_zeros_dfa))
        document["version"] = 999
        with pytest.raises(InvalidAutomatonError):
            nfa_from_json(json.dumps(document))

    def test_unserializable_state_raises(self):
        class Opaque:
            def __hash__(self):
                return 1

            def __eq__(self, other):
                return isinstance(other, Opaque)

        state = Opaque()
        nfa = NFA([state], ["0"], [], state, [])
        with pytest.raises(InvalidAutomatonError):
            nfa_to_json(nfa)

    def test_indent_option(self, even_zeros_dfa):
        pretty = nfa_to_json(even_zeros_dfa, indent=2)
        assert "\n" in pretty
        assert nfa_from_json(pretty) == even_zeros_dfa


class TestDot:
    def test_contains_states_and_labels(self, even_zeros_dfa):
        dot = nfa_to_dot(even_zeros_dfa)
        assert dot.startswith("digraph")
        assert '"even"' in dot and '"odd"' in dot
        assert "doublecircle" in dot  # the final state

    def test_parallel_edges_merged(self):
        nfa = NFA(["s", "t"], ["0", "1"], [("s", "0", "t"), ("s", "1", "t")], "s", ["t"])
        assert '"0,1"' in nfa_to_dot(nfa)

    def test_epsilon_label(self):
        nfa = NFA(["a", "b"], ["0"], [("a", EPSILON, "b")], "a", ["b"])
        assert "ε" in nfa_to_dot(nfa)

    def test_unrolled_dag_dot_matches_figure2(self):
        dag = unroll_trimmed(figure1_nfa().without_epsilon(), 3)
        dot = unrolled_dag_to_dot(dag)
        # Six live vertices of Figure 2, all present; q5 absent.
        for label in ["q0,0", "q1,1", "q2,1", "q3,2", "q4,2", "qF,3"]:
            assert label in dot
        assert "q5" not in dot
        assert "rank=same" in dot
