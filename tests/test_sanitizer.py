"""Runtime concurrency sanitizer + deterministic schedule fuzzer tests.

The centerpiece reproduces the PR 9 scrape race — a stats broadcast
stealing a batch's reply off the engine's shared result queue — as a
*deterministic* schedule: the unguarded (pre-fix) access pattern steals
under a seed found by scanning, replays identically under that seed,
and never steals once the accesses follow the shipped ``_pool_lock``
discipline.

``REPRO_SCHED_SEEDS`` (comma-separated ints) widens the seed matrix;
CI's schedule-fuzz job sweeps it.
"""

import asyncio
import json
import os
import threading

import pytest

from repro.analysis.sanitizer import (
    ReproSanitizer,
    SanitizerError,
    TrackedLock,
)
from repro.analysis.schedule import (
    DeadlockError,
    FuzzLock,
    FuzzQueue,
    ScheduleFuzzer,
    run_fuzzed,
)
from repro.service.engine import Engine

SEEDS = [int(s) for s in os.environ.get("REPRO_SCHED_SEEDS", "0,1,2").split(",")]


class _Box:
    """Fixture: one guarded counter, a disciplined and a racy method."""

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self.value += 1

    def bump_racy(self):
        self.value += 1


class _LoopOwned:
    """Fixture: attribute pinned to the event-loop domain."""

    def __init__(self):
        self.count = 0  # owned-by: event-loop

    def bump(self):
        self.count += 1


class TestReproSanitizer:
    def test_guarded_access_with_lock_is_clean(self):
        sanitizer = ReproSanitizer()
        box = sanitizer.watch(_Box())
        assert isinstance(box._lock, TrackedLock)
        box.bump()
        box.bump()
        sanitizer.assert_clean()
        with box._lock:
            assert box.value == 2

    def test_unguarded_access_is_reported_not_raised(self):
        sanitizer = ReproSanitizer()
        box = sanitizer.watch(_Box())
        box.bump_racy()  # read + write, both unguarded
        violations = sanitizer.violations
        assert {v.access for v in violations} == {"read", "write"}
        assert violations[0].attr == "value"
        assert violations[0].expected == "_lock"
        with pytest.raises(SanitizerError, match="guarded access violation"):
            sanitizer.assert_clean()

    def test_held_set_tracks_nesting_and_release(self):
        sanitizer = ReproSanitizer()
        outer = sanitizer.track_lock(threading.Lock(), "outer")
        inner = sanitizer.track_lock(threading.Lock(), "inner")
        assert sanitizer.held() == ()
        with outer:
            with inner:
                assert sanitizer.held() == ("outer", "inner")
            assert sanitizer.held() == ("outer",)
        assert sanitizer.held() == ()

    def test_held_set_is_per_thread(self):
        sanitizer = ReproSanitizer()
        box = sanitizer.watch(_Box())
        seen = []

        def other():
            seen.append(sanitizer.held())
            box.bump_racy()

        with box._lock:
            thread = threading.Thread(target=other)
            thread.start()
            thread.join(timeout=10)
        # The other thread held nothing even while main held the lock.
        assert seen == [()]
        assert sanitizer.violations
        assert all(v.thread != "MainThread" for v in sanitizer.violations)

    def test_owned_by_domain_enforced(self):
        sanitizer = ReproSanitizer()
        owned = sanitizer.watch(_LoopOwned())
        sanitizer.register_domain("event-loop")
        owned.bump()  # current thread registered to the owner domain
        sanitizer.assert_clean()

        thread = threading.Thread(target=owned.bump, name="intruder")
        thread.start()
        thread.join(timeout=10)
        violations = sanitizer.violations
        assert violations and violations[0].kind == "owned-by"
        assert violations[0].thread == "intruder"
        assert "unregistered" in violations[0].note

    def test_unwatch_restores_class(self):
        sanitizer = ReproSanitizer()
        box = sanitizer.watch(_Box())
        assert type(box) is not _Box
        sanitizer.unwatch(box)
        assert type(box) is _Box
        box.bump_racy()  # no longer intercepted
        sanitizer.assert_clean()

    def test_watch_without_declarations_is_noop(self):
        class Plain:
            pass

        sanitizer = ReproSanitizer()
        obj = Plain()
        assert sanitizer.watch(obj) is obj
        assert type(obj) is Plain


class TestScheduleFuzzer:
    def test_same_seed_same_trace(self):
        def run_once(seed):
            fuzzer = ScheduleFuzzer(seed)
            log = []
            for label in ("a", "b", "c"):

                def body(who=label):
                    for step in range(3):
                        fuzzer.point()
                        log.append(f"{who}{step}")

                fuzzer.spawn(label, body)
            trace = fuzzer.run(timeout=30)
            return trace, log

        first = run_once(11)
        again = run_once(11)
        assert first == again
        # Some seed interleaves differently (scan is deterministic).
        assert any(run_once(s)[1] != first[1] for s in range(8))

    def test_thread_exception_is_reraised(self):
        fuzzer = ScheduleFuzzer(0)

        def boom():
            raise ValueError("from managed thread")

        fuzzer.spawn("boom", boom)
        with pytest.raises(ValueError, match="from managed thread"):
            fuzzer.run(timeout=30)

    def test_deadlock_detection_unblocks(self):
        fuzzer = ScheduleFuzzer(0)
        block = threading.Event()
        fuzzer.spawn("stuck", lambda: block.wait(timeout=60))
        try:
            with pytest.raises(DeadlockError, match="stalled"):
                fuzzer.run(timeout=1.0)
        finally:
            block.set()

    def test_fuzzlock_prevents_lost_update(self):
        """A read-yield-write counter loses updates under some schedule;
        the same workload under a FuzzLock never does."""

        def run_once(seed, guarded):
            fuzzer = ScheduleFuzzer(seed)
            lock = FuzzLock(fuzzer)
            state = {"count": 0}

            def bump():
                if guarded:
                    lock.acquire()
                try:
                    snapshot = state["count"]
                    fuzzer.point("between read and write")
                    state["count"] = snapshot + 1
                finally:
                    if guarded:
                        lock.release()

            fuzzer.spawn("a", bump)
            fuzzer.spawn("b", bump)
            fuzzer.run(timeout=30)
            return state["count"]

        losing = [s for s in range(12) if run_once(s, guarded=False) < 2]
        assert losing, "no schedule exhibited the lost update"
        assert run_once(losing[0], guarded=False) < 2  # replays
        for seed in losing + SEEDS:
            assert run_once(seed, guarded=True) == 2


def _scrape_race_trial(seed, guarded):
    """Replay the PR 9 scrape-race shape against a real worker pool.

    Two threads share the engine's multiprocess result queue the way
    the pre-fix code did: a batch submitter and a stats broadcaster
    each put a task and then take *whatever reply arrives first*.
    ``guarded=False`` reproduces the reverted (unlocked) access
    pattern; ``guarded=True`` wraps each put+get in the shipped
    ``_pool_lock`` discipline.  Returns a fully deterministic outcome
    tuple for the seed: (stole?, pick trace, who-received-what).
    """

    engine = Engine(workers=1)
    try:
        fuzzer = ScheduleFuzzer(seed)
        tasks = FuzzQueue(fuzzer, engine._task_queues[0])
        replies = FuzzQueue(fuzzer, engine._results)
        lock = FuzzLock(fuzzer, engine._pool_lock)
        wrong = []

        def roundtrip(label, batch_id):
            if guarded:
                lock.acquire()
            try:
                tasks.put((batch_id, 0, [{"id": label, "op": "ping"}]))
                got_batch, _, _ = replies.get(timeout=30)
                if got_batch != batch_id:
                    wrong.append((label, got_batch))
            finally:
                if guarded:
                    lock.release()

        fuzzer.spawn("batch", roundtrip, "batch", 101)
        fuzzer.spawn("stats", roundtrip, "stats", 202)
        trace = fuzzer.run(timeout=60)
        received = [(consumer, item[0]) for consumer, item in replies.received]
        return sorted(wrong), trace, received
    finally:
        engine.close()


class TestScrapeRaceReproduction:
    def test_unguarded_steals_deterministically_guarded_never(self):
        stealing_seed = None
        for seed in range(10):
            wrong, _, _ = _scrape_race_trial(seed, guarded=False)
            if wrong:
                stealing_seed = seed
                break
        assert stealing_seed is not None, "no adversarial schedule found"

        first = _scrape_race_trial(stealing_seed, guarded=False)
        again = _scrape_race_trial(stealing_seed, guarded=False)
        assert first == again, "same seed must replay the same schedule"
        # The steal is visible in the receipt log: one thread consumed
        # the other's reply.
        wrong, _, received = first
        stolen_by = {consumer for consumer, batch in received
                     if (consumer, batch) in {("batch", 202), ("stats", 101)}}
        assert stolen_by
        assert wrong

        for seed in [stealing_seed, *SEEDS]:
            wrong, _, received = _scrape_race_trial(seed, guarded=True)
            assert wrong == [], f"guarded run stole under seed {seed}"
            assert ("batch", 101) in received and ("stats", 202) in received

    def test_sanitizer_clean_on_shipped_engine(self):
        """Every declared Engine attribute access on the shipped code
        paths happens under ``_pool_lock`` — zero violations."""

        sanitizer = ReproSanitizer()
        engine = sanitizer.watch(Engine(workers=1))
        try:
            responses = engine.execute(
                [{"id": "p1", "op": "ping"}, {"id": "p2", "op": "ping"}]
            )
            assert [r["id"] for r in responses] == ["p1", "p2"]
            stats = engine.stats()
            assert stats["alive"] == 1
        finally:
            engine.close()
        sanitizer.assert_clean()

    def test_sanitizer_flags_reverted_access_pattern(self):
        """The pre-fix shape — touching pool state without the lock —
        is exactly what the sanitizer reports."""

        sanitizer = ReproSanitizer()
        engine = sanitizer.watch(Engine(workers=1))
        try:
            queues = engine._task_queues  # unguarded read (the old bug)
            assert len(queues) == 1
        finally:
            engine.close()
        violations = sanitizer.violations
        assert violations
        assert violations[0].attr == "_task_queues"
        assert violations[0].expected == "_pool_lock"
        with pytest.raises(SanitizerError):
            sanitizer.assert_clean()


class TestFuzzedEventLoop:
    @staticmethod
    async def _staggered_tasks():
        order = []

        async def step(name):
            for _ in range(3):
                await asyncio.sleep(0)
            order.append(name)

        async with asyncio.TaskGroup() as group:
            for name in ("a", "b", "c", "d"):
                group.create_task(step(name))
        return order

    def test_same_seed_same_callback_order(self):
        first = run_fuzzed(self._staggered_tasks(), seed=5)
        again = run_fuzzed(self._staggered_tasks(), seed=5)
        assert first == again
        assert sorted(first) == ["a", "b", "c", "d"]
        # Shuffling genuinely perturbs: some seed orders differently.
        assert any(
            run_fuzzed(self._staggered_tasks(), seed=s) != first
            for s in range(10)
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_server_correct_under_adversarial_callback_order(self, seed):
        """Concurrent clients against the real async server on a fuzzed
        loop: every client gets exactly its own replies, never another
        client's.  (Per-connection *ordering* is deliberately not
        asserted: responses are written by detached send tasks, which
        promise delivery, not cross-request sequencing.)"""

        from repro.service.server import AsyncWitnessServer

        async def drive():
            engine = Engine(workers=0)
            server = AsyncWitnessServer(engine, batch_window=0.01)
            ready = []
            run_task = asyncio.get_running_loop().create_task(
                server.run("127.0.0.1", 0, ready.append)
            )
            while not ready:
                await asyncio.sleep(0.01)
            host, port = ready[0][:2]

            async def client(tag):
                reader, writer = await asyncio.open_connection(host, port)
                ids = [f"{tag}-{i}" for i in range(3)]
                for request_id in ids:
                    writer.write(
                        json.dumps({"id": request_id, "op": "ping"}).encode()
                        + b"\n"
                    )
                await writer.drain()
                got = [
                    json.loads(await reader.readline())["id"] for _ in ids
                ]
                writer.close()
                await writer.wait_closed()
                return ids, got

            outcomes = await asyncio.gather(*(client(f"c{n}") for n in range(3)))
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b'{"id": "kill", "op": "shutdown"}\n')
            await writer.drain()
            await reader.readline()
            writer.close()
            await run_task
            engine.close()
            return outcomes

        for sent, received in run_fuzzed(drive(), seed=seed):
            assert sorted(received) == sorted(sent)
