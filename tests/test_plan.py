"""The symbolic automaton-plan IR and its fused lazy lowering.

Two layers of guarantees:

* unit tests: each plan node's language equals the eager construction it
  replaces, the on-the-fly interface behaves, the lowering's stats tell
  the truth (never more states materialized than reached);
* randomized equivalence: across ~50 random (graph, RPQ) instances, ~50
  (eVA, document) instances and ~50 NFA intersection pairs, the
  lazy-lowered kernel and the eager product-NFA pipeline agree on
  ``count_exact``, the length spectrum and — on unambiguous instances,
  where the kernels are bit-identical — the exact seeded
  ``sample_batch`` stream.
"""

from __future__ import annotations

import pytest

from repro.api import WitnessSet
from repro.automata import operations as ops
from repro.automata.dfa import languages_equal
from repro.automata.nfa import NFA, word
from repro.automata.random_gen import random_nfa
from repro.automata.regex import compile_regex
from repro.automata.unambiguous import is_unambiguous
from repro.core.plan import (
    Atom,
    Concat,
    DocProduct,
    GraphProduct,
    Intersect,
    Plan,
    Product,
    Relabel,
    Star,
    Union,
    as_plan,
    lower_plan,
)
from repro.errors import InvalidAutomatonError
from repro.graphdb.graph import grid_graph, random_graph
from repro.graphdb.rpq import RPQ, compile_rpq
from repro.spanners.eva import extraction_eva
from repro.spanners.evaluation import compile_eva
from repro.utils.rng import make_rng

AB = list("ab")


def _eager_rpq_ws(graph, pattern, source, target, n):
    return WitnessSet.from_nfa(compile_rpq(graph, RPQ(pattern), source, target), n)


# ----------------------------------------------------------------------
# Plan nodes: language equality against the eager algebra
# ----------------------------------------------------------------------


class TestPlanNodes:
    @pytest.fixture
    def left(self):
        return compile_regex("(ab|ba)*", alphabet=AB)

    @pytest.fixture
    def right(self):
        return compile_regex("a(a|b)*", alphabet=AB)

    def test_product_language(self, left, right):
        plan = Product(left, right)
        assert languages_equal(plan.to_nfa(), ops.intersection(left, right))

    def test_union_language(self, left, right):
        assert languages_equal(Union(left, right).to_nfa(), ops.union(left, right))

    def test_concat_language(self, left, right):
        assert languages_equal(
            Concat(left, right).to_nfa(), ops.concatenate(left, right)
        )

    def test_star_language(self, right):
        assert languages_equal(Star(right).to_nfa(), ops.star(right))

    def test_relabel_language(self, left):
        mapping = {"a": "x", "b": "y"}
        assert languages_equal(
            Relabel(left, mapping).to_nfa(), left.map_symbols(mapping)
        )

    def test_relabel_rejects_non_injective(self, left):
        with pytest.raises(InvalidAutomatonError):
            Relabel(left, {"a": "x", "b": "x"})

    def test_operator_sugar(self, left, right):
        assert isinstance(as_plan(left) & right, Product)
        assert isinstance(as_plan(left) | right, Union)

    def test_as_plan_coercions(self, left):
        assert isinstance(as_plan(left), Atom)
        assert isinstance(as_plan("(a|b)*"), Atom)
        plan = as_plan(left)
        assert as_plan(plan) is plan
        with pytest.raises(InvalidAutomatonError):
            as_plan(42)

    def test_intersect_alias(self):
        assert Intersect is Product

    def test_plan_accepts_on_the_fly(self, left, right):
        plan = Product(left, right)
        assert plan.accepts(word("abba"))
        assert not plan.accepts(word("baba"))  # not in a(a|b)*
        assert not plan.accepts(word("aa"))  # not in (ab|ba)*

    def test_plan_returning_operation_variants(self, left, right):
        assert isinstance(ops.intersection_plan(left, right), Product)
        assert isinstance(ops.union_plan(left, right), Union)
        assert isinstance(ops.concatenate_plan(left, right), Concat)
        assert isinstance(ops.star_plan(left), Star)
        assert isinstance(ops.relabel_plan(left, {"a": "x", "b": "y"}), Relabel)

    def test_nested_composition_lowers(self, left, right):
        # (L ∩ R)* ∪ L — three levels of symbolic nesting, one lowering.
        plan = Union(Star(Product(left, right)), Atom(left))
        kernel = lower_plan(plan, 6)
        eager = plan.to_nfa()
        assert kernel.total_runs >= 1
        assert (
            WitnessSet.from_plan(plan, 6).count_exact()
            == WitnessSet.from_nfa(eager, 6).count_exact()
        )


# ----------------------------------------------------------------------
# The fused lowering: stats honesty and kernel identity
# ----------------------------------------------------------------------


class TestLowering:
    def test_never_materializes_more_than_reached(self):
        g = grid_graph(5, 5)
        ws = WitnessSet.from_rpq(g, "(r|d)*", (0, 0), (4, 4), 8)
        stats = ws.describe()["lowering"]
        assert stats["explored_states"] <= stats["reached_states"]
        assert stats["reached_states"] <= stats["nominal_states"]
        assert stats["kernel_vertices"] <= stats["explored_states"] * (ws.n + 1)

    def test_lowering_stats_attached(self):
        plan = Product("(ab|ba)*", "(a|b)*a(a|b)*")
        kernel = lower_plan(plan, 8)
        assert kernel.lowering is not None
        assert kernel.lowering.trimmed
        assert kernel.lowering.n == 8
        assert kernel.lowering.kernel_vertices == kernel.vertex_count()
        assert kernel.lowering.kernel_edges == kernel.edge_count()

    def test_trimmed_and_reachable_modes(self):
        plan = as_plan(compile_regex("(ab|ba)*", alphabet=AB))
        trimmed = lower_plan(plan, 6, trimmed=True)
        reachable = lower_plan(plan, 6, trimmed=False)
        assert trimmed.total_runs == reachable.spectrum_counts()[6]
        reachable.extend_to(10)
        eager = WitnessSet.from_regex("(ab|ba)*", 10, alphabet="ab")
        assert reachable.spectrum_counts() == [
            eager.spectrum(10)[length] for length in range(11)
        ]

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            lower_plan(as_plan("(a|b)*"), -1)

    def test_kernel_cached_per_plan_with_stats(self):
        ws = WitnessSet.from_intersection("(ab|ba)*", "(a|b)*", 6)
        first = ws.kernel
        assert ws.kernel is first
        assert ws.stats.hits.get("kernel", 0) >= 1
        assert ws.stats.misses.get("kernel", 0) == 1

    def test_trimmed_and_reachable_kernels_share_exploration(self):
        ws = WitnessSet.from_intersection("(ab|ba)*", "(a|b)*", 6)
        trimmed = ws.kernel
        reachable = ws.reachable_kernel
        # Both lowerings feed one successor memo (same forward states),
        # and the stats stay per-lowering honest regardless of sharing.
        assert trimmed.nfa.adjacency is reachable.nfa.adjacency
        assert trimmed.lowering.explored_states <= trimmed.lowering.reached_states
        assert reachable.lowering.explored_states <= reachable.lowering.reached_states

    def test_direct_constructors_reject_foreign_plan_kernel(self):
        from repro.baselines.montecarlo import uniform_run_sampler
        from repro.core.fpras import FprasState

        other = lower_plan(as_plan("b*"), 5, trimmed=False)
        nfa = compile_regex("(a|b)*a", alphabet=AB)
        with pytest.raises(InvalidAutomatonError):
            FprasState(nfa, 5, kernel=other)
        with pytest.raises(InvalidAutomatonError):
            uniform_run_sampler(nfa, 5, kernel=lower_plan(as_plan("b*"), 5))


# ----------------------------------------------------------------------
# Randomized equivalence: lazy lowering vs eager product NFA
# ----------------------------------------------------------------------

RPQ_PATTERNS = ["(a|b)*", "a(a|b)*b", "(ab)*", "a*b*", "(a|ab)*", "b(a|b)*a"]


class TestLazyRpqEquivalence:
    @pytest.mark.parametrize("case", range(50))
    def test_lazy_agrees_with_eager(self, case):
        rng = make_rng(1000 + case)
        g = random_graph(7, labels=AB, density=1.5, rng=rng)
        vertices = sorted(g.vertices)
        source = vertices[case % len(vertices)]
        target = vertices[(case * 3 + 1) % len(vertices)]
        pattern = RPQ_PATTERNS[case % len(RPQ_PATTERNS)]
        n = 3 + case % 3

        lazy = WitnessSet.from_rpq(g, pattern, source, target, n)
        eager = _eager_rpq_ws(g, pattern, source, target, n)

        assert lazy.count_exact() == eager.count_exact()
        assert lazy.spectrum() == eager.spectrum()
        assert lazy.is_unambiguous == eager.is_unambiguous

        stats = lazy.describe()["lowering"]
        assert stats["explored_states"] <= stats["reached_states"]

        if lazy.is_unambiguous and lazy.nonempty:
            # Identical kernels ⇒ identical seeded draw streams.
            lazy_words = [tuple(p.steps) for p in lazy.sample_batch(10, rng=7)]
            eager_words = [tuple(w) for w in eager.sample_batch(10, rng=7)]
            assert lazy_words == eager_words


DOCS = ["abab", "aabba", "ab ab", "bbb", "a b ab", "abba ab", "ababab", " ab "]


class TestLazySpannerEquivalence:
    @pytest.mark.parametrize("case", range(50))
    def test_lazy_agrees_with_eager(self, case):
        rng = make_rng(2000 + case)
        alphabet = "ab "
        document = DOCS[case % len(DOCS)] + "".join(
            rng.choice(alphabet) for _ in range(case % 5)
        )
        prefix = ["a", "b", "ab", ""][case % 4]
        eva = extraction_eva(prefix, "x", "ab", alphabet)

        lazy = WitnessSet.from_spanner(eva, document)
        eager = WitnessSet.from_nfa(compile_eva(eva, document), len(document) + 1)

        assert lazy.count_exact() == eager.count_exact()
        assert lazy.spectrum() == eager.spectrum()
        assert lazy.is_unambiguous == eager.is_unambiguous
        if lazy.is_unambiguous and lazy.nonempty:
            lazy_mappings = lazy.sample_batch(8, rng=11)
            eager_words = eager.sample_batch(8, rng=11)
            assert [lazy.encode(m) for m in lazy_mappings] == eager_words


class TestFromIntersectionEquivalence:
    @pytest.mark.parametrize("case", range(50))
    def test_agrees_with_eager_intersection(self, case):
        a = random_nfa(5, alphabet=AB, density=1.2, rng=3000 + case)
        b = random_nfa(4, alphabet=AB, density=1.2, rng=4000 + case)
        n = 3 + case % 4

        lazy = WitnessSet.from_intersection(a, b, n)
        eager = WitnessSet.from_nfa(ops.intersection(a, b), n)

        assert lazy.count_exact() == eager.count_exact()
        assert lazy.spectrum() == eager.spectrum()
        assert lazy.is_unambiguous == eager.is_unambiguous
        if lazy.is_unambiguous and lazy.nonempty:
            assert lazy.sample_batch(8, rng=5) == eager.sample_batch(8, rng=5)
        # Lazy membership agrees with the eager automaton.
        for w in lazy.words(limit=5):
            assert lazy.contains(w)
            assert eager.stripped.accepts(w)


class TestLazyUnambiguityCheck:
    @pytest.mark.parametrize("case", range(20))
    def test_plan_check_matches_materialized(self, case):
        a = random_nfa(5, alphabet=AB, density=1.3, rng=5000 + case)
        b = random_nfa(4, alphabet=AB, density=1.3, rng=6000 + case)
        plan = Product(a, b)
        assert is_unambiguous(plan) == is_unambiguous(plan.to_nfa().trim())


# ----------------------------------------------------------------------
# Facade integration details
# ----------------------------------------------------------------------


class TestPlanBackedWitnessSet:
    def test_describe_reports_plan_shape(self):
        ws = WitnessSet.from_intersection("(ab|ba)*", "(a|b)*aa(a|b)*", 10)
        facts = ws.describe()
        assert facts["source"] == "intersection"
        assert facts["plan"].startswith("Product(")
        assert facts["lowering"]["nominal_states"] >= facts["lowering"]["explored_states"]
        # "states" counts distinct product states (the automaton-size
        # analog), not the unrolled per-layer vertices.
        assert facts["states"] <= facts["lowering"]["reached_states"]
        assert facts["lowering"]["kernel_vertices"] == ws.kernel.vertex_count()

    def test_requires_nfa_or_plan(self):
        from repro.errors import InvalidRelationInputError

        with pytest.raises(InvalidRelationInputError):
            WitnessSet(None, 3)

    def test_plan_positional_argument(self):
        ws = WitnessSet(Product("(ab|ba)*", "(a|b)*"), 6)
        assert ws.plan is not None
        assert ws.nfa is None
        assert ws.count_exact() == WitnessSet.from_regex("(ab|ba)*", 6).count_exact()

    def test_ambiguous_plan_fallbacks_materialize(self):
        # (a|aa)* ∩ a* is ambiguous: FPRAS count and enumeration go
        # through the materialized fallback, and still agree with naive.
        ws = WitnessSet.from_intersection("(a|aa)*", "a*", 6)
        assert not ws.is_unambiguous
        assert ws.count_exact() == 1
        assert list(ws.words()) == [tuple("aaaaaa")]
        estimate = ws.count(backend="fpras", delta=0.4, rng=0)
        assert estimate == pytest.approx(1.0, rel=0.6)

    def test_empty_intersection(self):
        ws = WitnessSet.from_intersection("aa", "ab", 2)
        assert not ws.nonempty
        assert ws.count_exact() == 0
        assert ws.sample(rng=0) is None

    def test_backend_rejects_foreign_plan_kernel(self):
        from repro.errors import BackendError

        ws_a = WitnessSet.from_intersection("(ab|ba)*", "(a|b)*", 6)
        ws_b = WitnessSet.from_intersection("(ab)*", "(a|b)*", 6)
        with pytest.raises(BackendError):
            ws_b.count(backend="exact", kernel=ws_a.kernel)
        with pytest.raises(BackendError):
            ws_b.count(backend="fpras", rng=0, kernel=ws_a.reachable_kernel)
        # The witness set's own kernel passes the identity guard.
        assert ws_b.count(backend="exact", kernel=ws_b.kernel) == ws_b.count_exact()

    def test_rpq_evaluator_exposes_plan(self):
        from repro.graphdb.rpq import RpqEvaluator

        g = grid_graph(3, 3)
        evaluator = RpqEvaluator(g, RPQ("(r|d)*"), (0, 0), (2, 2), 4)
        assert isinstance(evaluator.plan, GraphProduct)
        assert evaluator.count_exact() == 6
        assert isinstance(evaluator.nfa, NFA)  # materialized on demand

    def test_spanner_evaluator_exposes_plan(self):
        from repro.spanners.evaluation import SpannerEvaluator

        eva = extraction_eva("a", "x", "b", "ab")
        evaluator = SpannerEvaluator(eva, "abba")
        assert isinstance(evaluator.plan, DocProduct)
        assert evaluator.count_exact() == len(list(evaluator.mappings()))
