"""Tests for the context-free extension (derivation counting/sampling)."""

from __future__ import annotations

import pytest

from repro.errors import EmptyWitnessSetError, InvalidRelationInputError
from repro.grammars.cfg import (
    CNFGrammar,
    Rule,
    count_derivations,
    derivation_sampler,
)
from repro.utils.stats import chi_square_uniformity


@pytest.fixture
def balanced_pairs():
    """S → SS | ab (CNF via helpers): 'balanced' ab-blocks; Catalan counts."""
    return CNFGrammar(
        nonterminals=["S", "A", "B", "P"],
        terminals=["a", "b"],
        rules=[
            ("S", ("S", "S")),
            ("S", ("A", "B")),
            ("A", ("a",)),
            ("B", ("b",)),
        ],
        start="S",
    )


@pytest.fixture
def unambiguous_anbn():
    """S → a S b | a b in CNF: the language {aⁿbⁿ}, unambiguous."""
    return CNFGrammar(
        nonterminals=["S", "A", "B", "T"],
        terminals=["a", "b"],
        rules=[
            ("S", ("A", "T")),   # S → A T ; T → S B  gives a S b
            ("T", ("S", "B")),
            ("S", ("A", "B")),   # S → a b
            ("A", ("a",)),
            ("B", ("b",)),
        ],
        start="S",
    )


class TestConstruction:
    def test_validation_disjoint(self):
        with pytest.raises(InvalidRelationInputError):
            CNFGrammar(["S"], ["S"], [], "S")

    def test_validation_start(self):
        with pytest.raises(InvalidRelationInputError):
            CNFGrammar(["S"], ["a"], [], "X")

    def test_validation_bodies(self):
        with pytest.raises(InvalidRelationInputError):
            CNFGrammar(["S"], ["a"], [("S", ("a", "a", "a"))], "S")
        with pytest.raises(InvalidRelationInputError):
            CNFGrammar(["S"], ["a"], [("S", ("X", "S"))], "S")


class TestRecognition:
    def test_anbn(self, unambiguous_anbn):
        g = unambiguous_anbn
        assert g.recognizes(tuple("ab"))
        assert g.recognizes(tuple("aabb"))
        assert g.recognizes(tuple("aaabbb"))
        assert not g.recognizes(tuple("abab"))
        assert not g.recognizes(tuple("aab"))
        assert not g.recognizes(())

    def test_words_of_length(self, unambiguous_anbn):
        assert unambiguous_anbn.words_of_length(4) == [tuple("aabb")]
        assert unambiguous_anbn.words_of_length(3) == []


class TestCounting:
    def test_anbn_counts(self, unambiguous_anbn):
        counts = count_derivations(unambiguous_anbn, 8)
        for length in range(1, 9):
            expected = 1 if length % 2 == 0 else 0
            assert counts[("S", length)] == expected

    def test_catalan_derivations(self, balanced_pairs):
        """(ab)^k under S → SS | ab has Catalan(k-1) derivations of the
        single word — the canonical ambiguity example."""
        counts = count_derivations(balanced_pairs, 8)
        catalan = [1, 1, 2, 5]
        for k in range(1, 5):
            assert counts[("S", 2 * k)] == catalan[k - 1]

    def test_derivations_vs_words_gap(self, balanced_pairs):
        """The ambiguous case: derivation count > word count."""
        multiplicities = balanced_pairs.word_multiplicities(6)
        assert multiplicities == {tuple("ababab"): 2}
        assert not balanced_pairs.is_unambiguous_up_to(6)

    def test_unambiguous_check(self, unambiguous_anbn):
        assert unambiguous_anbn.is_unambiguous_up_to(8)


class TestSampling:
    def test_samples_are_words(self, unambiguous_anbn):
        sampler = derivation_sampler(unambiguous_anbn, 8)
        for seed in range(5):
            w = sampler.sample_word(seed)
            assert unambiguous_anbn.recognizes(w)
            assert w == tuple("aaaabbbb")

    def test_empty_length(self, unambiguous_anbn):
        sampler = derivation_sampler(unambiguous_anbn, 7)  # odd: empty
        with pytest.raises(EmptyWitnessSetError):
            sampler.sample_word(0)

    def test_uniform_over_derivations(self, balanced_pairs, rng):
        """On (ab)^3 the two derivations are equally likely; the word
        distribution is trivially concentrated — we verify the sampler's
        split choice frequencies instead via a grammar with 2 words."""
        g = CNFGrammar(
            nonterminals=["S", "A", "B"],
            terminals=["a", "b"],
            rules=[
                ("S", ("A", "B")),
                ("S", ("B", "A")),
                ("A", ("a",)),
                ("B", ("b",)),
            ],
            start="S",
        )
        sampler = derivation_sampler(g, 2)
        assert sampler.total == 2
        samples = [sampler.sample_word(rng) for _ in range(400)]
        result = chi_square_uniformity(samples, [tuple("ab"), tuple("ba")])
        assert not result.rejects_uniformity()

    def test_big_counts_are_exact(self):
        """Bignum check: a grammar with doubly-exponential derivation counts."""
        g = CNFGrammar(
            nonterminals=["S"],
            terminals=["x"],
            rules=[("S", ("S", "S")), ("S", ("x",))],
            start="S",
        )
        import math

        counts = count_derivations(g, 40)
        # Derivations of x^n under S→SS|x are Catalan(n-1): exact integers.
        catalan_39 = math.comb(78, 39) // 40
        assert counts[("S", 40)] == catalan_39
