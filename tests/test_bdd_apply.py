"""Tests for Bryant's apply algebra on OBDDs."""

from __future__ import annotations

import pytest

from repro.bdd.apply import apply, bdd_and, bdd_or, bdd_xor, negate, restrict
from repro.bdd.builders import conj, disj, neg, obdd_from_formula, var
from repro.errors import InvalidAutomatonError

ORDER = ["a", "b", "c"]


def build(formula):
    return obdd_from_formula(formula, ORDER)


def assignments():
    for mask in range(8):
        yield {variable: (mask >> index) & 1 for index, variable in enumerate(ORDER)}


class TestApply:
    def test_and_semantics(self):
        left = build(disj(var("a"), var("b")))
        right = build(disj(var("b"), var("c")))
        combined = bdd_and(left, right)
        for sigma in assignments():
            assert combined.evaluate(sigma) == (
                left.evaluate(sigma) and right.evaluate(sigma)
            )

    def test_or_semantics(self):
        left = build(conj(var("a"), var("b")))
        right = build(var("c"))
        combined = bdd_or(left, right)
        for sigma in assignments():
            assert combined.evaluate(sigma) == (
                left.evaluate(sigma) or right.evaluate(sigma)
            )

    def test_xor_semantics(self):
        left = build(var("a"))
        right = build(var("c"))
        combined = bdd_xor(left, right)
        for sigma in assignments():
            assert combined.evaluate(sigma) == (left.evaluate(sigma) ^ right.evaluate(sigma))

    def test_contradiction_collapses_to_terminal(self):
        diagram = bdd_and(build(var("a")), build(neg(var("a"))))
        assert not diagram.nodes  # reduced to the ⊥ terminal
        for sigma in assignments():
            assert diagram.evaluate(sigma) == 0

    def test_tautology_collapses(self):
        diagram = bdd_or(build(var("a")), build(neg(var("a"))))
        assert not diagram.nodes
        for sigma in assignments():
            assert diagram.evaluate(sigma) == 1

    def test_order_mismatch_rejected(self):
        other = obdd_from_formula(var("a"), ["a", "z"])
        with pytest.raises(InvalidAutomatonError):
            bdd_and(build(var("a")), other)

    def test_result_is_reduced(self):
        # (a ∧ c) ∨ (a ∧ c) should not duplicate nodes.
        one = build(conj(var("a"), var("c")))
        combined = bdd_or(one, one)
        assert len(combined.nodes) <= len(one.nodes)


class TestNegateRestrict:
    def test_negate(self):
        diagram = build(disj(var("a"), conj(var("b"), var("c"))))
        flipped = negate(diagram)
        for sigma in assignments():
            assert flipped.evaluate(sigma) == 1 - diagram.evaluate(sigma)

    def test_double_negation(self):
        diagram = build(var("b"))
        for sigma in assignments():
            assert negate(negate(diagram)).evaluate(sigma) == diagram.evaluate(sigma)

    def test_restrict(self):
        diagram = build(disj(conj(var("a"), var("b")), var("c")))
        fixed = restrict(diagram, "a", 1)
        for sigma in assignments():
            forced = dict(sigma)
            forced["a"] = 1
            assert fixed.evaluate(sigma) == diagram.evaluate(forced)

    def test_restrict_unknown_variable(self):
        with pytest.raises(InvalidAutomatonError):
            restrict(build(var("a")), "zz", 0)

    def test_shannon_expansion_identity(self):
        """D = (x ∧ D|_{x=1}) ∨ (¬x ∧ D|_{x=0})."""
        diagram = build(disj(conj(var("a"), var("b")), conj(var("b"), var("c"))))
        x = build(var("b"))
        rebuilt = bdd_or(
            bdd_and(x, restrict(diagram, "b", 1)),
            bdd_and(negate(x), restrict(diagram, "b", 0)),
        )
        for sigma in assignments():
            assert rebuilt.evaluate(sigma) == diagram.evaluate(sigma)


class TestApplyFeedsCounting:
    def test_counting_after_apply(self):
        from repro.bdd.obdd import EvalObddRelation
        from repro.core.exact import count_words_exact

        combined = bdd_or(build(conj(var("a"), var("b"))), build(var("c")))
        compiled = EvalObddRelation().compile(combined)
        brute = sum(combined.evaluate(sigma) for sigma in assignments())
        assert count_words_exact(compiled.nfa, compiled.length) == brute
