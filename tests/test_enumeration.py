"""Unit tests for the enumerators (Algorithm 1 and the flashlight search)."""

from __future__ import annotations

import pytest

from repro.automata.nfa import NFA, word
from repro.automata.operations import words_of_length
from repro.automata.random_gen import ambiguity_blowup, random_nfa, random_ufa
from repro.core.enumeration import (
    enumerate_words,
    enumerate_words_nfa,
    enumerate_words_ufa,
)
from repro.errors import AmbiguityError
from repro.papers.figures import figure1_nfa


class TestConstantDelayUfa:
    def test_complete_and_duplicate_free(self, even_zeros_dfa):
        for n in range(6):
            out = list(enumerate_words_ufa(even_zeros_dfa, n))
            assert len(out) == len(set(out))
            assert sorted(out) == words_of_length(even_zeros_dfa, n)

    def test_raises_on_ambiguous(self, endswith_one_nfa):
        with pytest.raises(AmbiguityError):
            list(enumerate_words_ufa(endswith_one_nfa, 3))

    def test_check_false_skips_verification(self, even_zeros_dfa):
        out = list(enumerate_words_ufa(even_zeros_dfa, 3, check=False))
        assert len(out) == 4

    def test_empty_language(self):
        assert list(enumerate_words_ufa(NFA.empty_language("01"), 3)) == []

    def test_zero_length_accepting(self, even_zeros_dfa):
        assert list(enumerate_words_ufa(even_zeros_dfa, 0)) == [()]

    def test_zero_length_rejecting(self):
        nfa = NFA.single_word(word("a"))
        assert list(enumerate_words_ufa(nfa.without_epsilon(), 0)) == []

    def test_paper_worked_example_order(self):
        """Section 5.3.1: the first outputs are aaa then aab."""
        out = list(enumerate_words_ufa(figure1_nfa(), 3))
        assert out[0] == word("aaa")
        assert out[1] == word("aab")
        assert len(out) == 6

    def test_random_ufas(self, rng):
        for _ in range(8):
            ufa = random_ufa(6, rng=rng)
            for n in (0, 3, 5):
                out = list(enumerate_words_ufa(ufa, n))
                assert len(out) == len(set(out))
                assert sorted(out) == words_of_length(ufa, n)

    def test_lazy_first_answers(self, even_zeros_dfa):
        """The generator yields without draining the whole language."""
        iterator = enumerate_words_ufa(even_zeros_dfa, 40)
        first = next(iterator)
        assert len(first) == 40


class TestPolyDelayNfa:
    def test_complete_and_duplicate_free(self, endswith_one_nfa):
        for n in range(6):
            out = list(enumerate_words_nfa(endswith_one_nfa, n))
            assert len(out) == len(set(out))
            assert sorted(out) == words_of_length(endswith_one_nfa, n)

    def test_ambiguity_never_duplicates(self):
        nfa = ambiguity_blowup(3)
        out = list(enumerate_words_nfa(nfa, 6))
        assert len(out) == len(set(out)) == 8

    def test_random_nfas(self, rng):
        for _ in range(8):
            nfa = random_nfa(6, density=1.8, rng=rng)
            for n in (0, 3, 5):
                out = list(enumerate_words_nfa(nfa, n))
                assert len(out) == len(set(out))
                assert sorted(out) == words_of_length(nfa, n)

    def test_empty(self):
        assert list(enumerate_words_nfa(NFA.empty_language("01"), 2)) == []

    def test_lexicographic_order(self, endswith_one_nfa):
        out = list(enumerate_words_nfa(endswith_one_nfa, 4))
        assert out == sorted(out)


class TestDispatch:
    def test_uses_constant_delay_for_ufa(self, even_zeros_dfa):
        out = list(enumerate_words(even_zeros_dfa, 4))
        assert sorted(out) == words_of_length(even_zeros_dfa, 4)

    def test_uses_poly_delay_for_nfa(self, endswith_one_nfa):
        out = list(enumerate_words(endswith_one_nfa, 4))
        assert sorted(out) == words_of_length(endswith_one_nfa, 4)

    def test_agreement_between_enumerators_on_ufa(self, rng):
        """On unambiguous inputs both enumerators list the same set."""
        for _ in range(5):
            ufa = random_ufa(5, rng=rng)
            a = sorted(enumerate_words_ufa(ufa, 4))
            b = sorted(enumerate_words_nfa(ufa, 4))
            assert a == b
