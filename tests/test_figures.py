"""Experiments F1/F2: the paper's Figures 1 and 2, programmatically."""

from __future__ import annotations

from repro.automata.nfa import word
from repro.automata.unambiguous import is_unambiguous
from repro.core.enumeration import enumerate_words_ufa
from repro.core.exact import count_words_ufa
from repro.core.unroll import lemma15_graph, unroll
from repro.papers.figures import (
    figure1_nfa,
    figure2_dag_description,
    figure2_expected_words,
)


class TestFigure1:
    def test_seven_states(self):
        assert figure1_nfa().num_states == 7

    def test_unambiguous(self):
        assert is_unambiguous(figure1_nfa())

    def test_unique_final(self):
        assert figure1_nfa().finals == frozenset({"qF"})

    def test_language_at_k3(self):
        nfa = figure1_nfa()
        expected = figure2_expected_words()
        assert len(expected) == 6
        for w in expected:
            assert nfa.accepts(w)

    def test_count(self):
        assert count_words_ufa(figure1_nfa(), 3) == 6


class TestFigure2:
    def test_pruned_layers(self):
        dag, start, finals = lemma15_graph(figure1_nfa(), 3)
        for t, states in figure2_dag_description().items():
            assert dag.layer(t) == frozenset(states)

    def test_q5_only_removed_by_pruning(self):
        # The unpruned unrolling keeps nothing of q5 either (unreachable),
        # matching the text: "we have omitted many nodes from it".
        dag = unroll(figure1_nfa().without_epsilon(), 3)
        assert all("q5" not in dag.layer(t) for t in range(4))

    def test_worked_enumeration(self):
        """Section 5.3.1's narrative: aaa first, then aab, six words total."""
        out = list(enumerate_words_ufa(figure1_nfa(), 3))
        assert out[0] == word("aaa")
        assert out[1] == word("aab")
        assert sorted(out) == figure2_expected_words()

    def test_vertex_count_matches_figure(self):
        dag, _, _ = lemma15_graph(figure1_nfa(), 3)
        # Figure 2 draws 6 vertices: (q0,0),(q1,1),(q2,1),(q3,2),(q4,2),(qF,3).
        assert dag.vertex_count() == 6
