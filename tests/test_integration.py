"""End-to-end integration tests: the library's top-level story.

These exercise the public API the README advertises: regex → NFA →
count / enumerate / sample, class dispatch, and the agreement of every
counting route on shared instances.
"""

from __future__ import annotations

import pytest

import repro
from repro.automata import ambiguity_blowup, compile_regex, is_unambiguous
from repro.automata.operations import words_of_length
from repro.core import FprasParameters
from repro.errors import EmptyWitnessSetError

FAST = FprasParameters(sample_size=48)


class TestTopLevelApi:
    def test_count_words_dispatch_ufa(self):
        nfa = compile_regex("(ab)*", alphabet="ab")
        assert repro.count_words(nfa, 6) == 1

    def test_count_words_dispatch_ambiguous(self):
        nfa = compile_regex("(a|b)*a(a|b)*", alphabet="ab")
        # Words containing at least one 'a': 2^5 - 1.
        assert repro.count_words(nfa, 5) == 31

    def test_uniform_sample_ufa(self):
        nfa = compile_regex("(ab|ba)*", alphabet="ab")
        w = repro.uniform_sample(nfa, 6, rng=1)
        assert w is not None
        assert nfa.accepts(w)

    def test_uniform_sample_empty(self):
        nfa = compile_regex("aa", alphabet="ab")
        assert repro.uniform_sample(nfa, 3, rng=1) is None

    def test_uniform_samples_batch(self):
        nfa = compile_regex("(a|b){4}", alphabet="ab")
        samples = repro.uniform_samples(nfa, 4, 20, rng=2)
        assert len(samples) == 20
        assert all(nfa.accepts(w) for w in samples)

    def test_uniform_samples_ambiguous_route(self):
        nfa = ambiguity_blowup(7)
        samples = repro.uniform_samples(nfa, 14, 5, rng=3, delta=0.3)
        assert len(samples) == 5
        stripped = nfa.without_epsilon()
        assert all(stripped.accepts(w) for w in samples)

    def test_enumerate_words_api(self):
        nfa = compile_regex("a*b", alphabet="ab")
        assert list(repro.enumerate_words(nfa, 3)) == [tuple("aab")]


class TestCountingRoutesAgree:
    """Every counting path must tell the same story on shared instances."""

    @pytest.mark.parametrize("pattern", ["(ab|ba)*", "(a|b)*ab", "a*b*a*"])
    def test_regex_counts(self, pattern):
        nfa = compile_regex(pattern, alphabet="ab")
        for n in (0, 1, 4, 6):
            brute = len(words_of_length(nfa, n))
            assert repro.count_words(nfa, n) == brute
            assert repro.count_words_exact(nfa, n) == brute

    def test_fpras_tracks_exact_across_lengths(self):
        nfa = ambiguity_blowup(6)
        for n in (4, 8, 12):
            exact = repro.count_words_exact(nfa, n)
            estimate = repro.approx_count_nfa(nfa, n, delta=0.3, rng=5, params=FAST)
            if exact == 0:
                assert estimate == 0
            else:
                assert abs(estimate - exact) <= 0.4 * exact


class TestRegexSamplingStory:
    """The headline use case: uniform strings of a regex at a length."""

    def test_unambiguous_pattern_exact_route(self):
        nfa = compile_regex("(ab|ba)+", alphabet="ab")
        assert is_unambiguous(nfa)
        support = set(words_of_length(nfa, 6))
        seen = {repro.uniform_sample(nfa, 6, rng=seed) for seed in range(60)}
        assert seen <= support
        assert len(seen) == len(support)  # all 8 words show up in 60 draws

    def test_ambiguous_pattern_plvug_route(self):
        nfa = compile_regex("(a|b)*a(a|b)*", alphabet="ab")
        assert not is_unambiguous(nfa)
        support = set(words_of_length(nfa, 7))
        generator = repro.LasVegasUniformGenerator(nfa, 7, rng=9, delta=0.3, params=FAST)
        for w in generator.sample_many(20):
            assert w in support

    def test_sampling_respects_language_not_run_counts(self):
        """The PLVUG must not over-sample high-multiplicity words.

        On the blowup family the all-'0' word has 2^depth runs but must
        appear ≈ 1/2^depth of the time, not ≈ 20%.
        """
        depth = 6
        nfa = ambiguity_blowup(depth)
        n = 2 * depth
        generator = repro.LasVegasUniformGenerator(nfa, n, rng=13, delta=0.3, params=FAST)
        samples = generator.sample_many(300)
        all_zero = tuple("0" * n)
        share = samples.count(all_zero) / len(samples)
        assert share < 0.10  # uniform share is 1/64 ≈ 1.6%; biased would be ≈ 20%


class TestErrorSurface:
    def test_empty_witness_errors_are_informative(self):
        nfa = compile_regex("ab", alphabet="ab")
        sampler = repro.ExactUniformSampler(nfa, 5)
        with pytest.raises(EmptyWitnessSetError, match="length 5"):
            sampler.sample()

    def test_version_exposed(self):
        assert repro.__version__
