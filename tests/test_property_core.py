"""Hypothesis property tests for the core algorithms."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.automata.nfa import NFA
from repro.automata.operations import words_of_length
from repro.automata.unambiguous import is_unambiguous
from repro.core.enumeration import enumerate_words_nfa, enumerate_words_ufa
from repro.core.exact import (
    count_accepting_runs_of_length,
    count_words_exact,
)
from repro.core.exact_sampler import ExactUniformSampler
from repro.core.fpras import FprasParameters, FprasState
from repro.core.selfreduce import SelfReduction, psi
from repro.core.unroll import unroll, unroll_trimmed


@st.composite
def small_nfas(draw, max_states: int = 5):
    num_states = draw(st.integers(1, max_states))
    states = list(range(num_states))
    transitions = []
    for source in states:
        for symbol in "01":
            targets = draw(st.lists(st.sampled_from(states), max_size=2, unique=True))
            transitions.extend((source, symbol, target) for target in targets)
    finals = draw(st.lists(st.sampled_from(states), max_size=num_states, unique=True))
    return NFA(states, "01", transitions, 0, finals)


@st.composite
def small_dfas(draw, max_states: int = 5):
    """Random partial DFAs (hence unambiguous NFAs)."""
    num_states = draw(st.integers(1, max_states))
    states = list(range(num_states))
    transitions = []
    for source in states:
        for symbol in "01":
            target = draw(st.one_of(st.none(), st.sampled_from(states)))
            if target is not None:
                transitions.append((source, symbol, target))
    finals = draw(st.lists(st.sampled_from(states), max_size=num_states, unique=True))
    return NFA(states, "01", transitions, 0, finals)


lengths = st.integers(0, 5)


class TestCountingProperties:
    @given(small_nfas(), lengths)
    @settings(max_examples=60, deadline=None)
    def test_exact_count_matches_enumeration(self, nfa, n):
        assert count_words_exact(nfa, n) == len(words_of_length(nfa, n))

    @given(small_dfas(), lengths)
    @settings(max_examples=60, deadline=None)
    def test_run_count_equals_word_count_on_ufa(self, ufa, n):
        assert count_accepting_runs_of_length(ufa, n) == len(words_of_length(ufa, n))

    @given(small_nfas(), lengths)
    @settings(max_examples=60, deadline=None)
    def test_runs_dominate_words(self, nfa, n):
        assert count_accepting_runs_of_length(nfa, n) >= count_words_exact(nfa, n)


class TestEnumerationProperties:
    @given(small_dfas(), lengths)
    @settings(max_examples=50, deadline=None)
    def test_ufa_enumeration_is_exact_set(self, ufa, n):
        out = list(enumerate_words_ufa(ufa, n, check=False))
        assert len(out) == len(set(out))
        assert sorted(out) == words_of_length(ufa, n)

    @given(small_nfas(), lengths)
    @settings(max_examples=50, deadline=None)
    def test_nfa_enumeration_is_exact_set(self, nfa, n):
        out = list(enumerate_words_nfa(nfa, n))
        assert len(out) == len(set(out))
        assert sorted(out) == words_of_length(nfa, n)


class TestUnrollProperties:
    @given(small_nfas(), lengths)
    @settings(max_examples=50, deadline=None)
    def test_trimmed_layers_subset_of_reachable(self, nfa, n):
        stripped = nfa.without_epsilon()
        full = unroll(stripped, n)
        trimmed = unroll_trimmed(stripped, n)
        for t in range(n + 1):
            assert trimmed.layer(t) <= full.layer(t)

    @given(small_nfas(), lengths)
    @settings(max_examples=50, deadline=None)
    def test_emptiness_agrees_with_counting(self, nfa, n):
        assert unroll_trimmed(nfa.without_epsilon(), n).is_empty == (
            count_words_exact(nfa, n) == 0
        )


class TestSelfReductionProperties:
    @given(small_nfas(), st.integers(1, 4), st.sampled_from("01"))
    @settings(max_examples=60, deadline=None)
    def test_psi_residual_language(self, nfa, k, symbol):
        stripped = nfa.without_epsilon()
        reduced, new_k = psi(stripped, k, symbol)
        assert new_k == k - 1
        expected = sorted(
            w[1:] for w in words_of_length(stripped, k) if w[0] == symbol
        )
        assert sorted(words_of_length(reduced, new_k)) == expected

    @given(small_nfas(), st.integers(1, 4), st.sampled_from("01"))
    @settings(max_examples=60, deadline=None)
    def test_psi_polynomially_bounded(self, nfa, k, symbol):
        stripped = nfa.without_epsilon()
        reduced, _ = psi(stripped, k, symbol)
        assert reduced.num_states <= stripped.num_states + 1
        assert reduced.num_transitions <= 2 * max(1, stripped.num_transitions)

    @given(small_dfas(), st.integers(1, 4), st.sampled_from("01"))
    @settings(max_examples=50, deadline=None)
    def test_psi_preserves_unambiguity(self, ufa, k, symbol):
        reduced, _ = psi(ufa.without_epsilon(), k, symbol)
        assert is_unambiguous(reduced)

    @given(small_nfas(), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_witness_decomposition(self, nfa, k):
        """Condition (7): W(x) = ⋃_w {w ∘ y : y ∈ W(ψ(x, w))}."""
        stripped = nfa.without_epsilon()
        direct = set(words_of_length(stripped, k))
        recomposed = set()
        for symbol in "01":
            reduced, new_k = psi(stripped, k, symbol)
            for suffix in words_of_length(reduced, new_k):
                recomposed.add((symbol,) + suffix)
        assert direct == recomposed


class TestSamplerProperties:
    @given(small_dfas(), st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_samples_always_witnesses(self, ufa, n):
        sampler = ExactUniformSampler(ufa, n, check=False)
        if sampler.count == 0:
            return
        support = set(words_of_length(ufa, n))
        for seed in range(5):
            assert sampler.sample(seed) in support


class TestFprasProperties:
    @given(small_nfas(), st.integers(0, 4))
    @settings(max_examples=25, deadline=None)
    def test_small_instances_exact(self, nfa, n):
        """Below the exhaustive threshold the FPRAS must be exactly right."""
        state = FprasState(
            nfa, n, delta=0.5, rng=0, params=FprasParameters(sample_size=16)
        )
        assert state.count_estimate == count_words_exact(nfa, n)
