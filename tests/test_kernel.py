"""The array-backed :class:`CompiledDAG` kernel: structure, tables,
sampling, extension — and the backend agreement matrix across every
application domain (the acceptance bar for the kernel refactor)."""

from __future__ import annotations

from array import array
from collections import Counter

import pytest

from repro import WitnessSet, backends
from repro.automata.nfa import NFA, word
from repro.automata.operations import words_of_length
from repro.automata.random_gen import random_nfa, random_ufa
from repro.core.enumeration import enumerate_words_dag, enumerate_words_ufa
from repro.core.exact import (
    backward_run_table,
    count_accepting_runs_of_length,
    forward_run_table,
    length_spectrum,
)
from repro.core.fpras import FprasParameters, FprasState
from repro.core.kernel import CompiledDAG, as_kernel, compile_nfa
from repro.core.unroll import unroll, unroll_trimmed
from repro.errors import EmptyWitnessSetError, InvalidAutomatonError
from repro.utils.rng import make_rng

FAST = FprasParameters(sample_size=48)


class TestStructureMatchesUnrolledDAG:
    """The kernel's adapter views reproduce the seed set-based DAG exactly."""

    @pytest.mark.parametrize("trimmed", [False, True])
    def test_random_nfas(self, trimmed, rng):
        for _ in range(4):
            nfa = random_nfa(
                6, density=1.5, rng=rng, ensure_nonempty_length=5
            ).without_epsilon()
            dag = (unroll_trimmed if trimmed else unroll)(nfa, 5)
            kernel = as_kernel(dag)
            assert kernel.layers == list(dag.layers)
            assert kernel.final_states == dag.final_states
            assert kernel.is_empty == dag.is_empty
            assert kernel.vertex_count() == dag.vertex_count()
            assert kernel.edge_count() == dag.edge_count()
            for t in range(5):
                for state in dag.layer(t):
                    assert kernel.ordered_successors(t, state) == dag.ordered_successors(
                        t, state
                    )
            for t in range(1, 6):
                layer = dag.layer(t)
                assert kernel.predecessor_sets(t, layer) == dag.predecessor_sets(t, layer)
                for state in layer:
                    for symbol in nfa.alphabet:
                        assert kernel.predecessors(t, state, symbol) == dag.predecessors(
                            t, state, symbol
                        )

    def test_index_maps_are_repr_ordered(self, even_zeros_dfa):
        kernel = compile_nfa(even_zeros_dfa, 4)
        for t in range(5):
            states = kernel.layer_states(t)
            assert list(states) == sorted(states, key=repr)
            for i, state in enumerate(states):
                assert kernel.index_of(t, state) == i
                assert kernel.state_at(t, i) == state

    def test_epsilon_rejected(self):
        from repro.automata.nfa import EPSILON

        nfa = NFA(["a", "b"], ["0"], [("a", EPSILON, "b")], "a", ["b"])
        with pytest.raises(InvalidAutomatonError):
            CompiledDAG(nfa, 2, trimmed=False)


class TestCountTables:
    def test_dict_adapters_match_seed_shapes(self, even_zeros_dfa):
        dag = unroll_trimmed(even_zeros_dfa, 4)
        forward = forward_run_table(dag)
        backward = backward_run_table(dag)
        assert forward[0] == {"even": 1}
        assert backward[4] == {"even": 1}
        for t in range(5):
            crossing = sum(
                forward[t].get(state, 0) * backward[t].get(state, 0)
                for state in dag.layer(t)
            )
            assert crossing == 2**3

    def test_total_runs_equals_dp_count(self, rng):
        for _ in range(5):
            nfa = random_nfa(7, density=1.6, rng=rng).without_epsilon()
            kernel = compile_nfa(nfa, 6, trimmed=False)
            expected = sum(
                ways
                for state, ways in forward_run_table(unroll(nfa, 6))[6].items()
                if state in nfa.finals
            )
            assert kernel.total_runs == expected

    def test_bignum_spill_keeps_exactness(self):
        # Σ* over two symbols: |L_n| = 2^n, far beyond int64 at n = 96.
        nfa = NFA.full_language("ab")
        kernel = compile_nfa(nfa, 96)
        assert kernel.total_runs == 2**96
        assert isinstance(kernel.backward_counts()[0], list)  # spilled row
        assert isinstance(kernel.backward_counts()[96], array)  # packed row

    def test_spectrum_counts_match_per_length_dp(self, rng):
        nfa = random_ufa(8, rng=rng, ensure_nonempty_length=8)
        kernel = compile_nfa(nfa, 8, trimmed=False)
        assert kernel.spectrum_counts() == [
            count_accepting_runs_of_length(nfa, t) for t in range(9)
        ]

    def test_length_spectrum_single_compilation(self, even_zeros_dfa):
        assert length_spectrum(even_zeros_dfa, range(5)) == {
            0: 1,
            1: 1,
            2: 2,
            3: 4,
            4: 8,
        }
        assert length_spectrum(even_zeros_dfa, [3, 1]) == {1: 1, 3: 4}
        assert length_spectrum(even_zeros_dfa, []) == {}


class TestIncrementalExtension:
    def test_extension_matches_fresh_compile(self, rng):
        for _ in range(3):
            nfa = random_nfa(6, density=1.6, rng=rng).without_epsilon()
            grown = compile_nfa(nfa, 3, trimmed=False)
            grown.forward_counts()  # force rows so extension appends to them
            grown.extend_to(7)
            fresh = compile_nfa(nfa, 7, trimmed=False)
            assert grown.n == 7
            assert grown.layers == fresh.layers
            assert grown.spectrum_counts() == fresh.spectrum_counts()
            assert grown.total_runs == fresh.total_runs
            assert grown.edge_count() == fresh.edge_count()

    def test_extension_is_noop_backwards(self, even_zeros_dfa):
        kernel = compile_nfa(even_zeros_dfa, 5, trimmed=False)
        assert kernel.extend_to(3) is kernel
        assert kernel.n == 5

    def test_trimmed_kernels_refuse_extension(self, even_zeros_dfa):
        with pytest.raises(InvalidAutomatonError):
            compile_nfa(even_zeros_dfa, 4, trimmed=True).extend_to(6)


class TestKernelSampling:
    def test_samples_are_witnesses(self, even_zeros_dfa, rng):
        kernel = compile_nfa(even_zeros_dfa, 6)
        support = set(words_of_length(even_zeros_dfa, 6))
        for _ in range(30):
            assert kernel.sample_word(rng) in support

    def test_batch_matches_support_and_size(self, even_zeros_dfa, rng):
        kernel = compile_nfa(even_zeros_dfa, 6)
        support = set(words_of_length(even_zeros_dfa, 6))
        batch = kernel.sample_batch(200, rng)
        assert len(batch) == 200
        assert set(batch) <= support

    def test_batch_is_uniformish(self, even_zeros_dfa, rng):
        kernel = compile_nfa(even_zeros_dfa, 4)
        support = set(words_of_length(even_zeros_dfa, 4))
        counts = Counter(kernel.sample_batch(4000, rng))
        assert set(counts) == support
        expected = 4000 / len(support)
        for hits in counts.values():
            assert 0.5 * expected < hits < 1.5 * expected

    def test_batch_deterministic_given_seed(self, even_zeros_dfa):
        kernel = compile_nfa(even_zeros_dfa, 8)
        assert kernel.sample_batch(20, make_rng(5)) == kernel.sample_batch(
            20, make_rng(5)
        )

    def test_empty_and_degenerate_batches(self, even_zeros_dfa, rng):
        kernel = compile_nfa(even_zeros_dfa, 6)
        assert kernel.sample_batch(0, rng) == []
        with pytest.raises(ValueError):
            kernel.sample_batch(-1, rng)
        with pytest.raises(EmptyWitnessSetError):
            compile_nfa(NFA.empty_language("01"), 4).sample_batch(3, rng)

    def test_zero_length_batch(self, even_zeros_dfa, rng):
        assert compile_nfa(even_zeros_dfa, 0).sample_batch(3, rng) == [(), (), ()]

    def test_sampler_facade_batch(self, even_zeros_dfa, rng):
        ws = WitnessSet.from_nfa(even_zeros_dfa, 6)
        support = set(words_of_length(even_zeros_dfa, 6))
        batch = ws.sample_batch(50, rng=rng)
        assert len(batch) == 50
        assert set(batch) <= support
        with pytest.raises(EmptyWitnessSetError):
            WitnessSet.from_nfa(NFA.empty_language("01"), 3).sample_batch(2)

    def test_facade_batch_ambiguous_route(self, endswith_one_nfa, rng):
        ws = WitnessSet.from_nfa(endswith_one_nfa, 4, params=FAST, rng=rng)
        support = set(words_of_length(endswith_one_nfa, 4))
        assert set(ws.sample_batch(10)) <= support


class TestKernelEnumeration:
    def test_enumerates_language(self, rng):
        for _ in range(4):
            ufa = random_ufa(7, rng=rng, ensure_nonempty_length=6)
            via_kernel = list(enumerate_words_dag(compile_nfa(ufa, 6)))
            assert sorted(via_kernel) == sorted(words_of_length(ufa.without_epsilon(), 6))
            assert via_kernel == list(enumerate_words_ufa(ufa, 6))

    def test_accepts_unrolled_dag_argument(self, even_zeros_dfa):
        dag = unroll_trimmed(even_zeros_dfa, 4)
        assert sorted(enumerate_words_dag(dag)) == sorted(
            words_of_length(even_zeros_dfa, 4)
        )


class TestFprasOnKernel:
    def test_shared_kernel_matches_owned_kernel(self, endswith_one_nfa):
        kernel = compile_nfa(endswith_one_nfa, 9, trimmed=False)
        shared = FprasState(endswith_one_nfa, 9, rng=7, params=FAST, kernel=kernel)
        owned = FprasState(endswith_one_nfa, 9, rng=7, params=FAST)
        assert shared.count_estimate == owned.count_estimate
        assert shared.kernel is kernel

    def test_rejects_mismatched_kernel(self, endswith_one_nfa, even_zeros_dfa):
        with pytest.raises(InvalidAutomatonError):
            FprasState(
                endswith_one_nfa,
                6,
                kernel=compile_nfa(endswith_one_nfa, 6, trimmed=True),
            )
        with pytest.raises(InvalidAutomatonError):
            FprasState(
                endswith_one_nfa, 6, kernel=compile_nfa(even_zeros_dfa, 6, trimmed=False)
            )


class TestBackendAgreementMatrix:
    """Every registry backend agrees with the exact count on every
    application domain the paper covers — NFA, DNF, OBDD, RPQ, CFG."""

    TOLERANCE = 0.5  # generous relative bar for the randomized backends

    def _witness_sets(self):
        from repro.bdd.builders import conj, disj, neg, obdd_from_formula, var
        from repro.graphdb.graph import grid_graph
        from repro.grammars import CNFGrammar

        yield "nfa", WitnessSet.from_regex(
            "(ab|ba)*(a|b)?", 7, alphabet="ab", params=FAST, rng=11
        )
        yield "dnf", WitnessSet.from_dnf("x0 & !x2 | x1 & x3 | !x0 & x2", params=FAST, rng=11)
        obdd = obdd_from_formula(
            disj(conj(var("a"), var("b")), neg(var("c"))), ["a", "b", "c"]
        )
        yield "obdd", WitnessSet.from_obdd(obdd, params=FAST, rng=11)
        yield "rpq", WitnessSet.from_rpq(
            grid_graph(3, 3), "(r|d)*", (0, 0), (2, 2), 4, params=FAST, rng=11
        )
        grammar = CNFGrammar(
            nonterminals=["S", "A", "B", "T"],
            terminals=["a", "b"],
            rules=[
                ("S", ("A", "T")),
                ("T", ("S", "B")),
                ("S", ("A", "B")),
                ("A", ("a",)),
                ("B", ("b",)),
            ],
            start="S",
        )
        yield "cfg", WitnessSet.from_cfg(grammar, 6, params=FAST, rng=11)

    def test_all_backends_agree_with_exact(self):
        for source, ws in self._witness_sets():
            exact = ws.count()
            assert exact == ws.count(backend="naive"), source
            assert exact > 0, source
            for name in backends.available():
                solver = backends.get(name)
                if solver.requires_source is not None and solver.requires_source != source:
                    continue
                estimate = ws.count(backend=name, rng=5)
                assert estimate == pytest.approx(exact, rel=self.TOLERANCE), (
                    source,
                    name,
                    estimate,
                    exact,
                )

    def test_exact_backend_accepts_caller_kernel(self, even_zeros_dfa):
        ws = WitnessSet.from_nfa(even_zeros_dfa, 8)
        kernel = compile_nfa(even_zeros_dfa, 8, trimmed=True)
        assert ws.count(backend="exact", kernel=kernel) == 2**7
        assert ws.count(backend="montecarlo", samples=400, rng=2, kernel=kernel) == (
            pytest.approx(2**7, rel=0.4)
        )

    def test_backends_reject_mismatched_kernel(self, even_zeros_dfa):
        from repro.errors import BackendError

        ws = WitnessSet.from_nfa(even_zeros_dfa, 8)
        # A reachable kernel extended past n must not be counted at its
        # own length (the spectrum() interplay).
        extended = compile_nfa(even_zeros_dfa, 8, trimmed=False).extend_to(12)
        with pytest.raises(BackendError):
            ws.count(backend="exact", kernel=extended)
        with pytest.raises(BackendError):
            ws.count(backend="exact", kernel=compile_nfa(even_zeros_dfa, 5))
        with pytest.raises(BackendError):
            ws.count(backend="montecarlo", kernel=compile_nfa(even_zeros_dfa, 5))

    def test_spectrum_extension_does_not_corrupt_counts(self, even_zeros_dfa):
        ws = WitnessSet.from_nfa(even_zeros_dfa, 9)
        assert ws.spectrum(15)[15] == 2**14  # extends reachable_kernel in place
        assert ws.count() == 2**8            # trimmed kernel untouched
        assert ws.count(backend="fpras", rng=0) >= 0  # FPRAS still valid at n=9

    def test_run_sampler_rejects_mismatched_kernel(self, even_zeros_dfa):
        from repro.baselines.montecarlo import uniform_run_sampler

        with pytest.raises(InvalidAutomatonError):
            uniform_run_sampler(
                even_zeros_dfa, 8, kernel=compile_nfa(even_zeros_dfa, 5)
            )
