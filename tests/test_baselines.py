"""Tests for the baselines: brute force, Monte Carlo, KSM-style, Karp–Luby."""

from __future__ import annotations

import pytest

from repro.automata.nfa import NFA
from repro.automata.random_gen import ambiguity_blowup, random_nfa
from repro.baselines.kannan import kannan_style_count, ksm_sample_schedule
from repro.baselines.karp_luby import karp_luby_count
from repro.baselines.montecarlo import naive_montecarlo_count, uniform_run_sampler
from repro.baselines.naive import brute_force_count, brute_force_words
from repro.core.exact import count_accepting_runs_of_length, count_words_exact
from repro.dnf.formulas import parse_dnf, random_dnf
from repro.errors import EmptyWitnessSetError


class TestBruteForce:
    def test_counts(self, endswith_one_nfa):
        for n in range(6):
            assert brute_force_count(endswith_one_nfa, n) == 2**n - 1

    def test_words_are_accepted(self, even_zeros_dfa):
        for w in brute_force_words(even_zeros_dfa, 4):
            assert even_zeros_dfa.accepts(w)


class TestRunSampler:
    def test_samples_accepted_words(self, endswith_one_nfa, rng):
        sampler = uniform_run_sampler(endswith_one_nfa, 6)
        for _ in range(30):
            assert endswith_one_nfa.accepts(sampler(rng))

    def test_total_runs(self, endswith_one_nfa):
        sampler = uniform_run_sampler(endswith_one_nfa, 6)
        assert sampler.total_runs == count_accepting_runs_of_length(
            endswith_one_nfa, 6
        )

    def test_empty_raises(self, rng):
        sampler = uniform_run_sampler(NFA.empty_language("01"), 3)
        with pytest.raises(EmptyWitnessSetError):
            sampler(rng)

    def test_bias_toward_multiplicity(self, rng):
        """The documented flaw: words with more runs are over-sampled."""
        nfa = ambiguity_blowup(4)
        n = 8
        sampler = uniform_run_sampler(nfa, n)
        all_a = tuple("0" * n)
        hits = sum(1 for _ in range(600) if sampler(rng) == all_a)
        # all-a has 2^4 = 16 of 3^4 = 81 runs ≈ 19.8%; uniform over the
        # 16 words would be 6.25%.  Check we see the biased rate.
        assert hits / 600 > 0.12


class TestMonteCarlo:
    def test_unbiased_on_easy_instance(self, endswith_one_nfa, rng):
        result = naive_montecarlo_count(endswith_one_nfa, 8, samples=600, rng=rng)
        exact = 2**8 - 1
        assert abs(result.estimate - exact) <= 0.3 * exact

    def test_empty_language(self, rng):
        result = naive_montecarlo_count(NFA.empty_language("01"), 4, samples=10, rng=rng)
        assert result.estimate == 0.0

    def test_variance_grows_with_ambiguity(self, rng):
        """E5's shape in miniature: relative std grows with gadget depth."""
        shallow = naive_montecarlo_count(ambiguity_blowup(2), 4, samples=400, rng=rng)
        deep = naive_montecarlo_count(ambiguity_blowup(6), 12, samples=400, rng=rng)
        assert deep.empirical_relative_std > shallow.empirical_relative_std

    def test_diagnostics(self, endswith_one_nfa, rng):
        result = naive_montecarlo_count(endswith_one_nfa, 5, samples=50, rng=rng)
        assert result.samples == 50
        assert len(result.ratios) == 50
        assert result.total_paths == count_accepting_runs_of_length(endswith_one_nfa, 5)


class TestKannanStyle:
    def test_schedule_superpolynomial(self):
        small = ksm_sample_schedule(4, 0.2)
        large = ksm_sample_schedule(64, 0.2)
        assert large > small
        # Super-polynomial shape: doubling n more than doubles the exponent's
        # effect; at the default intensity 64 → n^3 while 4 → n^1.
        assert large / small > (64 / 4) ** 2

    def test_schedule_cap(self):
        assert ksm_sample_schedule(1000, 0.01, cap=5000) == 5000

    def test_estimates_reasonably(self, rng):
        nfa = random_nfa(6, density=1.6, rng=3, ensure_nonempty_length=8)
        exact = count_words_exact(nfa, 8)
        result = kannan_style_count(nfa, 8, delta=0.3, rng=rng, cap=3000)
        assert abs(result.estimate - exact) <= 0.6 * exact


class TestKarpLuby:
    def test_exact_on_single_term(self, rng):
        phi = parse_dnf("x0 & x1", num_variables=4)
        estimate = karp_luby_count(phi, rng=rng)
        assert estimate == pytest.approx(4, rel=0.3)

    def test_random_formulas(self, rng):
        for seed in range(3):
            phi = random_dnf(8, 4, 3, rng=seed)
            exact = phi.count_models_brute()
            estimate = karp_luby_count(phi, delta=0.15, rng=rng)
            assert abs(estimate - exact) <= 0.25 * exact

    def test_unsatisfiable(self, rng):
        phi = parse_dnf("x0 & !x0")
        assert karp_luby_count(phi, rng=rng) == 0.0

    def test_explicit_sample_budget(self, rng):
        phi = random_dnf(6, 3, 2, rng=1)
        estimate = karp_luby_count(phi, rng=rng, samples=2000)
        exact = phi.count_models_brute()
        assert abs(estimate - exact) <= 0.3 * exact
