"""Unit tests for repro.automata.dfa: determinization, minimization, equality."""

from __future__ import annotations

import pytest

from repro.automata.dfa import DFA, determinize, languages_equal, minimize
from repro.automata.nfa import EPSILON, NFA, word
from repro.automata.random_gen import random_nfa
from repro.errors import InvalidAutomatonError


class TestDFA:
    def test_partial_dfa_rejects_on_missing(self):
        dfa = DFA(["a", "b"], ["0"], {("a", "0"): "b"}, "a", ["b"])
        assert dfa.accepts(word("0"))
        assert not dfa.accepts(word("00"))

    def test_completed_adds_sink(self):
        dfa = DFA(["a"], ["0", "1"], {}, "a", ["a"])
        total = dfa.completed()
        assert total.num_states == 2
        assert total.accepts(())
        assert not total.accepts(word("01"))

    def test_completed_noop_when_total(self):
        dfa = DFA(["a"], ["0"], {("a", "0"): "a"}, "a", ["a"])
        assert dfa.completed() is dfa

    def test_complement(self):
        dfa = DFA(["a", "b"], ["0"], {("a", "0"): "b", ("b", "0"): "a"}, "a", ["a"])
        comp = dfa.complement()
        for length in range(5):
            w = word("0" * length)
            assert dfa.accepts(w) != comp.accepts(w)

    def test_rejects_epsilon(self):
        with pytest.raises(InvalidAutomatonError):
            DFA(["a"], ["0", EPSILON], {("a", EPSILON): "a"}, "a", [])

    def test_to_nfa_roundtrip(self):
        dfa = DFA(["a", "b"], ["0"], {("a", "0"): "b"}, "a", ["b"])
        nfa = dfa.to_nfa()
        assert nfa.accepts(word("0"))
        assert not nfa.accepts(word("00"))

    def test_validation_unknown_target(self):
        with pytest.raises(InvalidAutomatonError):
            DFA(["a"], ["0"], {("a", "0"): "ghost"}, "a", [])


class TestDeterminize:
    def test_language_preserved(self, endswith_one_nfa):
        dfa = determinize(endswith_one_nfa)
        for w in ["", "0", "1", "010", "000", "111"]:
            assert dfa.accepts(word(w)) == endswith_one_nfa.accepts(word(w))

    def test_result_is_deterministic(self, endswith_one_nfa):
        dfa = determinize(endswith_one_nfa)
        assert dfa.to_nfa().is_deterministic()

    def test_epsilon_handled(self):
        nfa = NFA(
            ["s", "m", "f"],
            ["a"],
            [("s", EPSILON, "m"), ("m", "a", "f")],
            "s",
            ["f"],
        )
        dfa = determinize(nfa)
        assert dfa.accepts(word("a"))
        assert not dfa.accepts(())

    def test_random_agreement(self, rng):
        for _ in range(10):
            nfa = random_nfa(5, density=1.5, rng=rng)
            dfa = determinize(nfa)
            for _ in range(20):
                w = tuple(rng.choice("01") for _ in range(rng.randrange(6)))
                assert dfa.accepts(w) == nfa.accepts(w)


class TestMinimize:
    def test_minimal_size_even_zeros(self, even_zeros_dfa):
        minimal = minimize(determinize(even_zeros_dfa))
        # The language needs exactly 2 states (complete DFA).
        assert minimal.num_states == 2

    def test_redundant_states_merged(self):
        # Two states with identical behaviour must merge.
        dfa = DFA(
            ["a", "b1", "b2"],
            ["0"],
            {("a", "0"): "b1", ("b1", "0"): "b2", ("b2", "0"): "b1"},
            "a",
            ["b1", "b2"],
        )
        minimal = minimize(dfa)
        # L = 0+ ; minimal complete DFA: start, accept-loop... compute:
        for length in range(1, 6):
            assert minimal.accepts(word("0" * length))
        assert not minimal.accepts(())
        assert minimal.num_states == 2

    def test_minimize_preserves_language_random(self, rng):
        for _ in range(8):
            nfa = random_nfa(4, density=1.5, rng=rng)
            dfa = determinize(nfa)
            minimal = minimize(dfa)
            for _ in range(30):
                w = tuple(rng.choice("01") for _ in range(rng.randrange(7)))
                assert minimal.accepts(w) == nfa.accepts(w)

    def test_idempotent_size(self, endswith_one_nfa):
        m1 = minimize(determinize(endswith_one_nfa))
        m2 = minimize(m1)
        assert m1.num_states == m2.num_states


class TestLanguagesEqual:
    def test_same_language_different_shape(self, endswith_one_nfa):
        dfa_nfa = determinize(endswith_one_nfa).to_nfa()
        assert languages_equal(endswith_one_nfa, dfa_nfa)

    def test_different_languages(self, endswith_one_nfa, even_zeros_dfa):
        assert not languages_equal(endswith_one_nfa, even_zeros_dfa)

    def test_empty_vs_nonempty(self):
        assert not languages_equal(
            NFA.empty_language("01"), NFA.only_empty_word("01")
        )

    def test_reflexive_on_random(self, rng):
        nfa = random_nfa(6, rng=rng)
        assert languages_equal(nfa, nfa)
