"""Hypothesis property tests for the automata substrate."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.automata.dfa import determinize, minimize
from repro.automata.nfa import NFA, word
from repro.automata.operations import intersection, union, words_of_length
from repro.automata.regex import compile_regex, match_brute_force, parse
from repro.automata.unambiguous import is_unambiguous
from repro.automata.encoding import BinaryEncodedNFA
from repro.core.exact import count_words_exact


@st.composite
def small_nfas(draw, max_states: int = 5):
    """Random small NFAs over {0,1} with arbitrary transition relations."""
    num_states = draw(st.integers(1, max_states))
    states = list(range(num_states))
    transitions = []
    for source in states:
        for symbol in "01":
            targets = draw(
                st.lists(st.sampled_from(states), max_size=2, unique=True)
            )
            transitions.extend((source, symbol, target) for target in targets)
    finals = draw(st.lists(st.sampled_from(states), max_size=num_states, unique=True))
    return NFA(states, "01", transitions, 0, finals)


@st.composite
def regex_asts(draw, depth: int = 3):
    """Random regex patterns over {a, b} of bounded depth."""
    if depth == 0:
        return draw(st.sampled_from(["a", "b", "(a)", "[ab]"]))
    left = draw(regex_asts(depth=depth - 1))
    right = draw(regex_asts(depth=depth - 1))
    shape = draw(st.sampled_from(["concat", "union", "star", "optional", "plus"]))
    if shape == "concat":
        return f"{left}{right}"
    if shape == "union":
        return f"({left}|{right})"
    if shape == "star":
        return f"({left})*"
    if shape == "optional":
        return f"({left})?"
    return f"({left})+"


binary_words = st.lists(st.sampled_from("01"), max_size=5).map(tuple)
ab_words = st.lists(st.sampled_from("ab"), max_size=5).map(tuple)


class TestDeterminizationProperties:
    @given(small_nfas(), binary_words)
    @settings(max_examples=60, deadline=None)
    def test_determinize_preserves_membership(self, nfa, w):
        assert determinize(nfa).accepts(w) == nfa.accepts(w)

    @given(small_nfas(), binary_words)
    @settings(max_examples=60, deadline=None)
    def test_minimize_preserves_membership(self, nfa, w):
        assert minimize(determinize(nfa)).accepts(w) == nfa.accepts(w)

    @given(small_nfas())
    @settings(max_examples=40, deadline=None)
    def test_determinized_is_unambiguous(self, nfa):
        assert is_unambiguous(determinize(nfa).to_nfa())


class TestAlgebraProperties:
    @given(small_nfas(max_states=4), small_nfas(max_states=4), binary_words)
    @settings(max_examples=60, deadline=None)
    def test_union_membership(self, a, b, w):
        assert union(a, b).accepts(w) == (a.accepts(w) or b.accepts(w))

    @given(small_nfas(max_states=4), small_nfas(max_states=4), binary_words)
    @settings(max_examples=60, deadline=None)
    def test_intersection_membership(self, a, b, w):
        assert intersection(a, b).accepts(w) == (a.accepts(w) and b.accepts(w))

    @given(small_nfas(max_states=4))
    @settings(max_examples=30, deadline=None)
    def test_trim_preserves_counts(self, nfa):
        trimmed = nfa.trim()
        for n in range(4):
            assert count_words_exact(nfa, n) == count_words_exact(trimmed, n)


class TestRegexProperties:
    @given(regex_asts(), ab_words)
    @settings(max_examples=80, deadline=None)
    def test_glushkov_matches_brute_force(self, pattern, w):
        ast = parse(pattern)
        nfa = compile_regex(pattern, alphabet="ab", method="glushkov")
        assert nfa.accepts(w) == match_brute_force(ast, w, frozenset("ab"))

    @given(regex_asts(), ab_words)
    @settings(max_examples=80, deadline=None)
    def test_thompson_matches_brute_force(self, pattern, w):
        ast = parse(pattern)
        nfa = compile_regex(pattern, alphabet="ab", method="thompson")
        assert nfa.accepts(w) == match_brute_force(ast, w, frozenset("ab"))

    @given(regex_asts())
    @settings(max_examples=40, deadline=None)
    def test_methods_count_identically(self, pattern):
        g = compile_regex(pattern, alphabet="ab", method="glushkov")
        t = compile_regex(pattern, alphabet="ab", method="thompson")
        for n in range(4):
            assert count_words_exact(g, n) == count_words_exact(t, n)


class TestEncodingProperties:
    @given(small_nfas(max_states=4))
    @settings(max_examples=30, deadline=None)
    def test_binary_encoding_preserves_counts(self, nfa):
        # Use a 3-symbol alphabet to force nontrivial codewords.
        widened = NFA(
            nfa.states,
            "012",
            list(nfa.transitions) + [(0, "2", 0)],
            nfa.initial,
            nfa.finals,
        )
        encoded = BinaryEncodedNFA(widened)
        for n in range(3):
            assert count_words_exact(widened, n) == count_words_exact(
                encoded.nfa, encoded.encoded_length(n)
            )
