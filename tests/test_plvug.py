"""Unit + statistical tests for the Las Vegas uniform generator (Cor. 23)."""

from __future__ import annotations

import pytest

from repro.automata.nfa import NFA
from repro.automata.operations import words_of_length
from repro.automata.random_gen import ambiguity_blowup, contains_pattern_nfa
from repro.core.fpras import FprasParameters
from repro.core.plvug import (
    DEFAULT_ATTEMPTS_PER_CALL,
    PAPER_MIN_ATTEMPTS_PER_CALL,
    LasVegasUniformGenerator,
)
from repro.errors import EmptyWitnessSetError
from repro.utils.stats import chi_square_uniformity

FAST = FprasParameters(sample_size=48)


class TestContract:
    def test_empty_returns_bottom(self, rng):
        generator = LasVegasUniformGenerator(NFA.empty_language("01"), 5, rng=rng)
        assert generator.generate() is None  # the paper's ⊥

    def test_nonempty_never_bottom(self, rng):
        """Property (2): ⊥ only on genuinely empty witness sets."""
        nfa = contains_pattern_nfa("11")
        generator = LasVegasUniformGenerator(nfa, 10, rng=rng, params=FAST)
        for _ in range(20):
            w = generator.generate()
            assert w is not None

    def test_samples_are_witnesses(self, rng):
        nfa = ambiguity_blowup(7)
        n = 14
        generator = LasVegasUniformGenerator(nfa, n, rng=rng, params=FAST)
        stripped = nfa.without_epsilon()
        for w in generator.sample_many(30):
            assert stripped.accepts(w)
            assert len(w) == n

    def test_attempt_budget_default(self):
        # ceil(ln 2 / e^-5) = 103 is the Proposition 18 contract minimum;
        # the shipping default must sit comfortably above it.
        assert PAPER_MIN_ATTEMPTS_PER_CALL == 103
        assert DEFAULT_ATTEMPTS_PER_CALL >= 10 * PAPER_MIN_ATTEMPTS_PER_CALL

    def test_failure_rate_below_half(self, rng):
        """Property (1): Pr(G ≠ fail) ≥ 1/2 — empirically much better."""
        nfa = ambiguity_blowup(7)
        generator = LasVegasUniformGenerator(nfa, 14, rng=rng, params=FAST)
        failures = 0
        trials = 25
        for _ in range(trials):
            outcome, _ = generator.generate_or_fail()
            # generate_or_fail is a SINGLE attempt; a full G-call batches
            # attempts_per_call of them, so the per-call failure rate is
            # (single-attempt failure)^103 — we check the batched contract.
            if outcome == "fail":
                failures += 1
        single_fail = failures / trials
        assert single_fail**PAPER_MIN_ATTEMPTS_PER_CALL < 0.5

    def test_empty_sample_many_raises(self, rng):
        generator = LasVegasUniformGenerator(NFA.empty_language("01"), 3, rng=rng)
        with pytest.raises(EmptyWitnessSetError):
            generator.sample_many(3)

    def test_count_estimate_exposed(self, rng):
        nfa = contains_pattern_nfa("1")
        generator = LasVegasUniformGenerator(nfa, 9, rng=rng, params=FAST)
        exact = 2**9 - 1
        assert abs(generator.count_estimate - exact) <= 0.5 * exact


class TestUniformity:
    def test_chi_square_small_support(self, rng):
        """Conditional-on-success distribution is uniform (property 3)."""
        nfa = ambiguity_blowup(7)
        n = 14
        support = words_of_length(nfa, n)
        assert len(support) == 2**7
        generator = LasVegasUniformGenerator(nfa, n, rng=rng, params=FAST)
        samples = generator.sample_many(len(support) * 12)
        result = chi_square_uniformity(samples, support)
        assert not result.rejects_uniformity(alpha=1e-4)

    def test_acceptance_rate_near_design_point(self, rng):
        """With good estimates, acceptance ≈ e⁻⁴ (Proposition 18 window)."""
        nfa = ambiguity_blowup(7)
        generator = LasVegasUniformGenerator(nfa, 14, rng=rng, params=FAST)
        rate = generator.empirical_acceptance_rate(trials=300)
        import math

        assert math.exp(-5) * 0.5 <= rate <= math.exp(-3) * 2
