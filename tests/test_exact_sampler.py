"""Unit + statistical tests for the §5.3.3 exact uniform sampler."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.automata.nfa import NFA, word
from repro.automata.operations import words_of_length
from repro.automata.random_gen import random_ufa
from repro.core.exact_sampler import (
    ExactUniformSampler,
    sample_word_ufa,
    sample_word_ufa_or_none,
    sample_word_ufa_via_psi,
)
from repro.errors import AmbiguityError, EmptyWitnessSetError
from repro.utils.stats import chi_square_uniformity


class TestSamplerBasics:
    def test_samples_are_witnesses(self, even_zeros_dfa, rng):
        sampler = ExactUniformSampler(even_zeros_dfa, 6)
        support = set(words_of_length(even_zeros_dfa, 6))
        for _ in range(50):
            assert sampler.sample(rng) in support

    def test_count_byproduct(self, even_zeros_dfa):
        sampler = ExactUniformSampler(even_zeros_dfa, 6)
        assert sampler.count == 2**5

    def test_empty_raises(self):
        sampler = ExactUniformSampler(NFA.empty_language("01"), 4)
        with pytest.raises(EmptyWitnessSetError):
            sampler.sample()

    def test_or_none_on_empty(self, rng):
        assert sample_word_ufa_or_none(NFA.empty_language("01"), 4, rng=rng) is None

    def test_ambiguous_rejected(self, endswith_one_nfa):
        with pytest.raises(AmbiguityError):
            ExactUniformSampler(endswith_one_nfa, 4)

    def test_single_witness(self, rng):
        nfa = NFA.single_word(word("abc")).without_epsilon()
        assert sample_word_ufa(nfa, 3, rng=rng) == word("abc")

    def test_zero_length(self, even_zeros_dfa, rng):
        assert sample_word_ufa(even_zeros_dfa, 0, rng=rng) == ()

    def test_deterministic_given_seed(self, even_zeros_dfa):
        a = ExactUniformSampler(even_zeros_dfa, 8).sample_many(10, rng=99)
        b = ExactUniformSampler(even_zeros_dfa, 8).sample_many(10, rng=99)
        assert a == b


class TestUniformity:
    def test_chi_square_even_zeros(self, even_zeros_dfa, rng):
        n = 5
        support = words_of_length(even_zeros_dfa, n)
        sampler = ExactUniformSampler(even_zeros_dfa, n)
        samples = sampler.sample_many(len(support) * 100, rng=rng)
        result = chi_square_uniformity(samples, support)
        assert not result.rejects_uniformity()

    def test_chi_square_random_ufa(self, rng):
        ufa = random_ufa(6, rng=7, ensure_nonempty_length=6)
        support = words_of_length(ufa, 6)
        if len(support) < 2:
            pytest.skip("degenerate support for this seed")
        sampler = ExactUniformSampler(ufa, 6, check=False)
        samples = sampler.sample_many(len(support) * 100, rng=rng)
        result = chi_square_uniformity(samples, support)
        assert not result.rejects_uniformity()

    def test_every_witness_eventually_sampled(self, even_zeros_dfa, rng):
        n = 4
        support = set(words_of_length(even_zeros_dfa, n))
        sampler = ExactUniformSampler(even_zeros_dfa, n)
        seen = set(sampler.sample_many(len(support) * 50, rng=rng))
        assert seen == support


class TestPsiReferenceSampler:
    def test_samples_are_witnesses(self, even_zeros_dfa, rng):
        support = set(words_of_length(even_zeros_dfa, 4))
        for _ in range(10):
            assert sample_word_ufa_via_psi(even_zeros_dfa, 4, rng=rng) in support

    def test_empty_raises(self, rng):
        with pytest.raises(EmptyWitnessSetError):
            sample_word_ufa_via_psi(NFA.empty_language("01"), 3, rng=rng)

    def test_agrees_in_distribution_with_fast_sampler(self, even_zeros_dfa, rng):
        """Both samplers are exactly uniform, so their empirical
        distributions must both pass against the same support."""
        n = 4
        support = words_of_length(even_zeros_dfa, n)
        psi_samples = [
            sample_word_ufa_via_psi(even_zeros_dfa, n, rng=rng, check=False)
            for _ in range(len(support) * 60)
        ]
        result = chi_square_uniformity(psi_samples, support)
        assert not result.rejects_uniformity()

    def test_distributions_match_pairwise(self, rng):
        """Empirical frequencies of both samplers stay within noise."""
        ufa = random_ufa(5, rng=3, ensure_nonempty_length=4)
        n = 4
        support = words_of_length(ufa, n)
        if not 2 <= len(support) <= 12:
            pytest.skip("want a small nontrivial support for this seed")
        fast = ExactUniformSampler(ufa, n, check=False)
        draws = len(support) * 80
        fast_counts = Counter(fast.sample_many(draws, rng=rng))
        psi_counts = Counter(
            sample_word_ufa_via_psi(ufa, n, rng=rng, check=False) for _ in range(draws)
        )
        for w in support:
            f = fast_counts.get(w, 0) / draws
            p = psi_counts.get(w, 0) / draws
            assert abs(f - p) < 0.12
