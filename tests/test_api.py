"""The WitnessSet facade: cross-domain agreement, caching, backends.

The acceptance story of the API redesign: one query object built once
answers count / sample / enumerate for every application domain without
recompiling (verified against the pre-existing direct call paths and
through the cache-hit counters), and counting strategies are selected by
name from the solver-backend registry.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro import WitnessSet, backends
from repro.api import shared, shared_cache_clear
from repro.automata import compile_regex, is_unambiguous
from repro.automata.operations import words_of_length
from repro.automata.random_gen import ambiguity_blowup
from repro.core.exact import count_accepting_runs_of_length, count_words_exact
from repro.core.fpras import FprasParameters
from repro.errors import (
    BackendError,
    EmptyWitnessSetError,
    InvalidRelationInputError,
    UnknownBackendError,
)

FAST = FprasParameters(sample_size=48)


# ----------------------------------------------------------------------
# Regex / raw NFA
# ----------------------------------------------------------------------


class TestRegexFacade:
    def test_count_matches_direct_paths(self):
        for pattern, n in [("(ab|ba)*", 6), ("(a|b)*a(a|b)*", 5), ("a*b*", 4)]:
            ws = WitnessSet.from_regex(pattern, n, alphabet="ab")
            nfa = compile_regex(pattern, alphabet="ab")
            assert ws.count() == len(words_of_length(nfa, n))

    def test_class_dispatch_matches_direct(self):
        ws = WitnessSet.from_regex("(ab|ba)*", 6, alphabet="ab")
        assert ws.is_unambiguous
        stripped = ws.nfa.without_epsilon().trim()
        assert ws.count() == count_accepting_runs_of_length(stripped, 6)

        ambiguous = WitnessSet.from_regex("(a|b)*a(a|b)*", 5, alphabet="ab")
        assert not ambiguous.is_unambiguous
        assert ambiguous.count() == count_words_exact(
            ambiguous.nfa.without_epsilon().trim(), 5
        )

    def test_enumerate_matches_direct(self):
        ws = WitnessSet.from_regex("(ab|ba)*", 6, alphabet="ab")
        nfa = compile_regex("(ab|ba)*", alphabet="ab")
        assert sorted(ws.enumerate()) == sorted(words_of_length(nfa, 6))

    def test_enumerate_limit(self):
        ws = WitnessSet.from_regex("(a|b)*", 4, alphabet="ab")
        assert len(list(ws.enumerate(limit=5))) == 5

    def test_samples_lie_in_language(self):
        ws = WitnessSet.from_regex("(ab|ba)*", 8, alphabet="ab")
        support = set(words_of_length(ws.nfa, 8))
        for w in ws.sample(25, rng=3):
            assert w in support

    def test_ambiguous_sampling_via_plvug(self):
        ws = WitnessSet.from_nfa(ambiguity_blowup(5), 10, delta=0.3, params=FAST, rng=1)
        assert not ws.is_unambiguous
        support = set(words_of_length(ws.stripped, 10))
        samples = ws.sample(10, rng=2)
        assert len(samples) == 10
        assert set(samples) <= support

    def test_empty_witness_set(self):
        ws = WitnessSet.from_regex("aa", 3, alphabet="ab")
        assert ws.count() == 0
        assert ws.sample(rng=0) is None
        with pytest.raises(EmptyWitnessSetError):
            ws.sample(2, rng=0)
        assert list(ws.enumerate()) == []

    def test_spectrum(self):
        ws = WitnessSet.from_regex("(ab|ba)*", 6, alphabet="ab")
        spectrum = ws.spectrum()
        assert spectrum == {0: 1, 1: 0, 2: 2, 3: 0, 4: 4, 5: 0, 6: 8}

    def test_contains(self):
        ws = WitnessSet.from_regex("(ab)*", 4, alphabet="ab")
        assert ws.contains(("a", "b", "a", "b"))
        assert not ws.contains(("b", "a", "b", "a"))
        assert not ws.contains(("a", "b"))

    def test_describe(self):
        facts = WitnessSet.from_regex("(ab)*", 4, alphabet="ab").describe()
        assert facts["class"] == "RelationUL"
        assert facts["source"] == "regex"

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            WitnessSet.from_regex("a*", -1, alphabet="a")


# ----------------------------------------------------------------------
# Caching: the no-recompilation guarantee
# ----------------------------------------------------------------------


class TestCaching:
    def test_artifacts_built_exactly_once(self):
        ws = WitnessSet.from_regex("(ab|ba)*(a|b)?", 9, alphabet="ab")
        ws.count()
        ws.sample(5, rng=0)
        list(ws.enumerate(limit=10))
        ws.spectrum()
        first_misses = dict(ws.stats.misses)
        # Every artifact was computed exactly once ...
        assert all(count == 1 for count in first_misses.values())
        assert ws.stats.misses["stripped"] == 1
        assert ws.stats.misses["dag"] == 1
        # ... and a second round of queries only ever hits.
        ws.count()
        ws.sample(5, rng=1)
        list(ws.enumerate(limit=10))
        assert dict(ws.stats.misses) == first_misses
        assert ws.stats.hit_count > 0

    def test_fpras_sketch_cached_per_delta_and_seed(self):
        ws = WitnessSet.from_nfa(ambiguity_blowup(4), 8, params=FAST)
        first = ws.count(backend="fpras", delta=0.3, rng=7)
        assert ws.count(backend="fpras", delta=0.3, rng=7) == first
        assert ws.stats.misses[("fpras", 0.3, 7)] == 1
        assert ws.stats.hits[("fpras", 0.3, 7)] == 1
        ws.count(backend="fpras", delta=0.2, rng=7)
        assert ws.stats.misses[("fpras", 0.2, 7)] == 1

    def test_shared_cache_returns_same_object(self):
        shared_cache_clear()
        nfa = compile_regex("(ab)*", alphabet="ab")
        structurally_equal = compile_regex("(ab)*", alphabet="ab")
        assert shared(nfa, 6) is shared(structurally_equal, 6)
        assert shared(nfa, 6) is not shared(nfa, 8)

    def test_legacy_helpers_route_through_shared_cache(self):
        shared_cache_clear()
        nfa = compile_regex("(ab|ba)*", alphabet="ab")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert repro.count_words(nfa, 6) == 8
            before = shared(nfa, 6).stats.hit_count
            assert repro.count_words(nfa, 6) == 8
            w = repro.uniform_sample(nfa, 6, rng=1)
        assert shared(nfa, 6).stats.hit_count > before
        assert nfa.accepts(w)

    def test_legacy_helpers_warn(self):
        nfa = compile_regex("(ab)*", alphabet="ab")
        with pytest.warns(DeprecationWarning):
            repro.count_words(nfa, 4)


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------


class TestBackends:
    def test_at_least_four_strategies_registered(self):
        names = set(backends.available())
        assert {"exact", "fpras", "kannan", "montecarlo", "karp_luby"} <= names

    def test_unknown_backend_is_a_clear_error(self):
        ws = WitnessSet.from_regex("(ab)*", 4, alphabet="ab")
        with pytest.raises(UnknownBackendError, match="unknown solver backend 'nope'"):
            ws.count(backend="nope")
        with pytest.raises(UnknownBackendError, match="exact"):
            backends.get("nope")

    def test_method_alias_and_epsilon_alias(self):
        ws = WitnessSet.from_nfa(ambiguity_blowup(4), 8, params=FAST)
        exact = ws.count()
        estimate = ws.count(method="fpras", epsilon=0.3, rng=1)
        assert abs(estimate - exact) <= 0.45 * exact
        with pytest.raises(ValueError):
            ws.count("exact", method="fpras")

    def test_approximate_backends_track_exact(self):
        ws = WitnessSet.from_nfa(ambiguity_blowup(4), 8, params=FAST)
        exact = ws.count()
        for name in ("montecarlo", "kannan"):
            estimate = ws.count(backend=name, rng=5)
            assert abs(estimate - exact) <= 0.5 * exact
        assert ws.count(backend="naive") == exact

    def test_karp_luby_requires_dnf_source(self):
        ws = WitnessSet.from_regex("(ab)*", 4, alphabet="ab")
        with pytest.raises(BackendError, match="dnf"):
            ws.count(backend="karp_luby")

    def test_custom_backend_registration(self):
        class Constant(backends.SolverBackend):
            name = "constant-42"
            exact = True

            def count(self, witness_set, **options):
                return 42

        backends.register(Constant())
        try:
            ws = WitnessSet.from_regex("(ab)*", 4, alphabet="ab")
            assert ws.count(backend="constant-42") == 42
            with pytest.raises(BackendError, match="already registered"):
                backends.register(Constant())
        finally:
            backends.unregister("constant-42")
        assert "constant-42" not in backends.available()

    def test_register_rejects_non_backend(self):
        with pytest.raises(BackendError):
            backends.register(lambda ws: 0)


# ----------------------------------------------------------------------
# Domain constructors
# ----------------------------------------------------------------------


class TestDnfFacade:
    TEXT = "x0 & x2 & !x5 | !x1 & x3 | x4 & x5"

    def test_count_matches_brute_force(self):
        ws = WitnessSet.from_dnf(self.TEXT)
        assert ws.count() == ws.instance.count_models_brute()

    def test_text_and_formula_inputs_agree(self):
        from repro.dnf.formulas import parse_dnf

        phi = parse_dnf(self.TEXT)
        assert WitnessSet.from_dnf(phi).count() == WitnessSet.from_dnf(self.TEXT).count()

    def test_via_transducer_route_agrees(self):
        ws = WitnessSet.from_dnf(self.TEXT, via_transducer=True)
        assert ws.count() == WitnessSet.from_dnf(self.TEXT).count()

    def test_samples_are_models(self):
        ws = WitnessSet.from_dnf(self.TEXT, params=FAST, rng=0)
        for assignment in ws.sample(10, rng=2):
            assert ws.instance.evaluate(assignment)

    def test_karp_luby_backend(self):
        ws = WitnessSet.from_dnf(self.TEXT)
        exact = ws.count()
        assert abs(ws.count(backend="karp_luby", rng=1) - exact) <= 0.3 * exact

    def test_bad_input_rejected(self):
        with pytest.raises(InvalidRelationInputError):
            WitnessSet.from_dnf(12345)


class TestObddFacade:
    def _obdd(self):
        from repro.bdd.builders import conj, disj, neg, obdd_from_formula, var

        formula = disj(conj(var("a"), var("b")), conj(neg(var("a")), var("c")))
        return obdd_from_formula(formula, ["a", "b", "c"])

    def test_count_matches_brute_force(self):
        obdd = self._obdd()
        ws = WitnessSet.from_obdd(obdd)
        assert ws.count() == len(obdd.satisfying_assignments_brute())
        assert ws.source == "obdd"

    def test_models_decode_and_evaluate(self):
        obdd = self._obdd()
        ws = WitnessSet.from_obdd(obdd)
        for model in ws.enumerate():
            assert obdd.evaluate(model) == 1
        assert obdd.evaluate(ws.sample(rng=0)) == 1

    def test_nobdd_route(self):
        from repro.bdd.builders import random_nobdd

        nobdd = random_nobdd(8, branches=3, rng=21)
        ws = WitnessSet.from_obdd(nobdd, delta=0.3, params=FAST, rng=1)
        assert ws.source == "nobdd"
        exact = ws.count()
        estimate = ws.count(backend="fpras", rng=2)
        if exact:
            assert abs(estimate - exact) <= 0.5 * exact
            assert nobdd.evaluate(ws.sample(rng=3)) == 1

    def test_bad_input_rejected(self):
        with pytest.raises(InvalidRelationInputError):
            WitnessSet.from_obdd("not a diagram")


class TestRpqFacade:
    def test_grid_counts_match_closed_form(self):
        import math

        from repro.graphdb.graph import grid_graph

        side = 4
        n = 2 * (side - 1)
        ws = WitnessSet.from_rpq(grid_graph(side, side), "(r|d)*", (0, 0),
                                 (side - 1, side - 1), n)
        assert ws.count() == math.comb(n, side - 1)

    def test_agrees_with_rpq_evaluator(self):
        from repro.graphdb.graph import social_graph
        from repro.graphdb.rpq import RPQ, RpqEvaluator

        g = social_graph(20, rng=9)
        people = sorted(g.vertices)
        source, target = people[0], people[5]
        ws = WitnessSet.from_rpq(g, "k(k|f)*k", source, target, 4)
        evaluator = RpqEvaluator(g, RPQ("k(k|f)*k"), source, target, 4)
        assert ws.count() == evaluator.count_exact()

    def test_sampled_witnesses_are_paths(self):
        from repro.graphdb.graph import grid_graph
        from repro.graphdb.rpq import Path

        g = grid_graph(4, 4)
        ws = WitnessSet.from_rpq(g, "(r|d)*", (0, 0), (3, 3), 6)
        path = ws.sample(rng=1)
        assert isinstance(path, Path)
        assert path.is_path_of(g)
        assert path.source == (0, 0) and path.target == (3, 3)

    def test_deterministic_query_lands_in_relation_ul(self):
        from repro.graphdb.graph import social_graph

        g = social_graph(15, rng=4)
        people = sorted(g.vertices)
        ws = WitnessSet.from_rpq(g, "k(k|f)*k", people[0], people[3], 4,
                                 deterministic_query=True)
        assert ws.is_unambiguous


class TestSpannerFacade:
    def _instance(self):
        from repro.spanners.eva import extraction_eva

        rule = extraction_eva("ab", "V", content_symbols="cd", alphabet="abcd")
        return rule, "cabdcabcc"

    def test_agrees_with_spanner_evaluator(self):
        from repro.spanners.evaluation import SpannerEvaluator

        rule, document = self._instance()
        ws = WitnessSet.from_spanner(rule, document)
        evaluator = SpannerEvaluator(rule, document)
        assert ws.count() == evaluator.count_exact()
        assert sorted(map(repr, ws.enumerate())) == sorted(
            map(repr, evaluator.mappings())
        )

    def test_sampled_mapping_is_an_extraction(self):
        rule, document = self._instance()
        ws = WitnessSet.from_spanner(rule, document, rng=0)
        mapping = ws.sample(rng=1)
        assert repr(mapping) in {repr(m) for m in ws.enumerate()}


class TestCfgFacade:
    def _grammar(self):
        from repro.grammars import CNFGrammar

        return CNFGrammar(
            nonterminals=["S", "A", "B", "T"],
            terminals=["a", "b"],
            rules=[
                ("S", ("A", "T")),
                ("T", ("S", "B")),
                ("S", ("A", "B")),
                ("A", ("a",)),
                ("B", ("b",)),
            ],
            start="S",
        )

    def test_count_and_enumeration_match_grammar(self):
        grammar = self._grammar()  # a^n b^n: one word per even length
        ws = WitnessSet.from_cfg(grammar, 6)
        assert ws.count() == len(grammar.words_of_length(6))
        assert sorted(ws.enumerate()) == sorted(grammar.words_of_length(6))
        assert ws.is_unambiguous  # the trie is deterministic

    def test_sample_is_a_grammar_word(self):
        grammar = self._grammar()
        ws = WitnessSet.from_cfg(grammar, 4)
        assert ws.sample(rng=0) in set(grammar.words_of_length(4))

    def test_limit_guard(self):
        from repro.grammars import CNFGrammar

        full = CNFGrammar(
            nonterminals=["S", "A", "B"],
            terminals=["a", "b"],
            rules=[
                ("S", ("A", "S")),
                ("S", ("B", "S")),
                ("S", ("A", "A")),
                ("S", ("A", "B")),
                ("S", ("B", "A")),
                ("S", ("B", "B")),
                ("A", ("a",)),
                ("B", ("b",)),
            ],
            start="S",
        )
        with pytest.raises(InvalidRelationInputError, match="slice exceeds"):
            WitnessSet.from_cfg(full, 8, limit=16)


class TestFromCompiled:
    def test_wraps_any_relation(self):
        from repro.dnf.formulas import parse_dnf
        from repro.dnf.relation import SatDnfRelation

        phi = parse_dnf("x0 & x1 | !x2")
        ws = WitnessSet.from_compiled(SatDnfRelation(), phi)
        assert ws.count() == phi.count_models_brute()
        assert ws.source == "SAT-DNF"
