"""Shared fixtures: canonical automata and seeded randomness.

Every test that needs randomness takes it from a fixture seeded per-test
(from the test's own name), so the suite is fully deterministic while
still exercising varied instances.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.automata.nfa import NFA


@pytest.fixture
def rng(request) -> random.Random:
    """A per-test deterministic RNG (seeded from the test's nodeid)."""
    return random.Random(zlib.crc32(request.node.nodeid.encode()))


@pytest.fixture
def even_zeros_dfa() -> NFA:
    """DFA over {0,1}: words with an even number of '0's.  |L_n| = 2^{n-1}."""
    return NFA(
        ["even", "odd"],
        ["0", "1"],
        [
            ("even", "0", "odd"),
            ("odd", "0", "even"),
            ("even", "1", "even"),
            ("odd", "1", "odd"),
        ],
        "even",
        ["even"],
    )


@pytest.fixture
def endswith_one_nfa() -> NFA:
    """Classic ambiguous NFA: words over {0,1} containing a '1'.

    The guess-the-position construction: |L_n| = 2^n - 1, but a word with
    k ones has k accepting runs.
    """
    return NFA(
        ["wait", "done"],
        ["0", "1"],
        [
            ("wait", "0", "wait"),
            ("wait", "1", "wait"),
            ("wait", "1", "done"),
            ("done", "0", "done"),
            ("done", "1", "done"),
        ],
        "wait",
        ["done"],
    )


@pytest.fixture
def abc_chain_nfa() -> NFA:
    """Unambiguous: the single word 'abc'."""
    return NFA.single_word(tuple("abc"), alphabet="abc")
