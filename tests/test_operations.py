"""Unit tests for the NFA language algebra (repro.automata.operations)."""

from __future__ import annotations

import pytest

from repro.automata import operations as ops
from repro.automata.dfa import languages_equal
from repro.automata.nfa import NFA, word


@pytest.fixture
def lang_a():
    return NFA.single_word(word("a"), alphabet="ab")


@pytest.fixture
def lang_b():
    return NFA.single_word(word("b"), alphabet="ab")


class TestUnion:
    def test_contains_both(self, lang_a, lang_b):
        u = ops.union(lang_a, lang_b)
        assert u.accepts(word("a"))
        assert u.accepts(word("b"))
        assert not u.accepts(word("ab"))

    def test_union_with_empty(self, lang_a):
        u = ops.union(lang_a, NFA.empty_language("ab"))
        assert languages_equal(u, lang_a)

    def test_commutative(self, lang_a, lang_b):
        assert languages_equal(ops.union(lang_a, lang_b), ops.union(lang_b, lang_a))


class TestConcatenate:
    def test_basic(self, lang_a, lang_b):
        c = ops.concatenate(lang_a, lang_b)
        assert c.accepts(word("ab"))
        assert not c.accepts(word("ba"))
        assert not c.accepts(word("a"))

    def test_epsilon_identity(self, lang_a):
        c = ops.concatenate(NFA.only_empty_word("ab"), lang_a)
        assert languages_equal(c, lang_a)

    def test_with_empty_language_is_empty(self, lang_a):
        c = ops.concatenate(lang_a, NFA.empty_language("ab"))
        assert languages_equal(c, NFA.empty_language("ab"))

    def test_associative(self, lang_a, lang_b):
        left = ops.concatenate(ops.concatenate(lang_a, lang_b), lang_a)
        right = ops.concatenate(lang_a, ops.concatenate(lang_b, lang_a))
        assert languages_equal(left, right)


class TestStarPlusOptional:
    def test_star_contains_powers(self, lang_a):
        s = ops.star(lang_a)
        for k in range(4):
            assert s.accepts(word("a" * k))
        assert not s.accepts(word("b"))

    def test_plus_excludes_empty(self, lang_a):
        p = ops.plus(lang_a)
        assert not p.accepts(())
        assert p.accepts(word("a"))
        assert p.accepts(word("aaa"))

    def test_optional(self, lang_a):
        o = ops.optional(lang_a)
        assert o.accepts(())
        assert o.accepts(word("a"))
        assert not o.accepts(word("aa"))

    def test_star_of_star_same_language(self, lang_a):
        s = ops.star(lang_a)
        assert languages_equal(ops.star(s), s)


class TestRepeat:
    def test_exact(self, lang_a):
        r = ops.repeat(lang_a, 3, 3)
        assert r.accepts(word("aaa"))
        assert not r.accepts(word("aa"))
        assert not r.accepts(word("aaaa"))

    def test_range(self, lang_a):
        r = ops.repeat(lang_a, 1, 3)
        assert not r.accepts(())
        for k in (1, 2, 3):
            assert r.accepts(word("a" * k))
        assert not r.accepts(word("aaaa"))

    def test_unbounded(self, lang_a):
        r = ops.repeat(lang_a, 2, None)
        assert not r.accepts(word("a"))
        assert r.accepts(word("aaaaa"))

    def test_invalid_bounds(self, lang_a):
        with pytest.raises(ValueError):
            ops.repeat(lang_a, 3, 2)


class TestIntersectionDifferenceReverse:
    def test_intersection(self, endswith_one_nfa, even_zeros_dfa):
        inter = ops.intersection(endswith_one_nfa, even_zeros_dfa)
        # Words with a '1' AND an even number of '0's.
        assert inter.accepts(word("1"))
        assert inter.accepts(word("100"))
        assert not inter.accepts(word("10"))
        assert not inter.accepts(word("00"))

    def test_intersection_with_full_is_identity(self, endswith_one_nfa):
        inter = ops.intersection(endswith_one_nfa, NFA.full_language("01"))
        assert languages_equal(inter, endswith_one_nfa)

    def test_difference(self, endswith_one_nfa, even_zeros_dfa):
        diff = ops.difference(endswith_one_nfa, even_zeros_dfa)
        # Has a '1' and an odd number of '0's.
        assert diff.accepts(word("10"))
        assert not diff.accepts(word("1"))
        assert not diff.accepts(word("0"))

    def test_de_morgan_on_lengths(self, endswith_one_nfa, even_zeros_dfa):
        """|A ∪ B| = |A| + |B| - |A ∩ B| at each length."""
        u = ops.union(endswith_one_nfa, even_zeros_dfa)
        inter = ops.intersection(endswith_one_nfa, even_zeros_dfa)
        for n in range(5):
            union_count = len(ops.words_of_length(u, n))
            a = len(ops.words_of_length(endswith_one_nfa, n))
            b = len(ops.words_of_length(even_zeros_dfa, n))
            i = len(ops.words_of_length(inter, n))
            assert union_count == a + b - i

    def test_reverse(self):
        nfa = NFA.single_word(word("abc"), alphabet="abc")
        rev = ops.reverse(nfa)
        assert rev.accepts(word("cba"))
        assert not rev.accepts(word("abc"))

    def test_reverse_involution(self, endswith_one_nfa):
        double = ops.reverse(ops.reverse(endswith_one_nfa))
        assert languages_equal(double, endswith_one_nfa)


class TestWordsOfLength:
    def test_counts(self, even_zeros_dfa):
        # Even number of zeros among length-n binary words: 2^{n-1} for n ≥ 1.
        for n in range(1, 6):
            assert len(ops.words_of_length(even_zeros_dfa, n)) == 2 ** (n - 1)

    def test_lexicographic_order(self, endswith_one_nfa):
        words = ops.words_of_length(endswith_one_nfa, 3)
        assert words == sorted(words)

    def test_limit(self, endswith_one_nfa):
        words = ops.words_of_length(endswith_one_nfa, 4, limit=3)
        assert len(words) == 3

    def test_zero_length(self, even_zeros_dfa):
        assert ops.words_of_length(even_zeros_dfa, 0) == [()]

    def test_empty_language(self):
        assert ops.words_of_length(NFA.empty_language("01"), 3) == []
