"""Tests for ≤-n length-spectrum semantics (padding + stratified solver)."""

from __future__ import annotations

import pytest

from repro.automata.nfa import NFA, word
from repro.automata.operations import words_of_length
from repro.automata.random_gen import random_ufa
from repro.automata.unambiguous import is_unambiguous
from repro.core.exact import count_words_exact
from repro.core.fpras import FprasParameters
from repro.core.spectrum import PAD, SpectrumSolver, pad_automaton, strip_padding
from repro.errors import EmptyWitnessSetError
from repro.utils.stats import chi_square_uniformity

FAST = FprasParameters(sample_size=48)


class TestPadAutomaton:
    def test_padded_counts(self, even_zeros_dfa):
        padded = pad_automaton(even_zeros_dfa)
        n = 5
        expected = sum(count_words_exact(even_zeros_dfa, length) for length in range(n + 1))
        assert count_words_exact(padded, n) == expected

    def test_padding_is_parseable(self, even_zeros_dfa):
        padded = pad_automaton(even_zeros_dfa)
        w = word("11") + (PAD, PAD)
        assert padded.accepts(w)
        assert strip_padding(w) == word("11")

    def test_pad_only_at_end(self, even_zeros_dfa):
        padded = pad_automaton(even_zeros_dfa)
        assert not padded.accepts((PAD, "1", "1"))

    def test_preserves_unambiguity(self, even_zeros_dfa):
        assert is_unambiguous(pad_automaton(even_zeros_dfa))

    def test_collision_rejected(self):
        nfa = NFA(["q"], [PAD], [], "q", ["q"])
        with pytest.raises(ValueError):
            pad_automaton(nfa)


class TestSpectrumSolverUfa:
    def test_count(self, even_zeros_dfa):
        solver = SpectrumSolver(even_zeros_dfa, 5)
        expected = sum(count_words_exact(even_zeros_dfa, length) for length in range(6))
        assert solver.count() == expected
        assert solver.count_exact() == expected

    def test_enumeration_shortest_first(self, even_zeros_dfa):
        solver = SpectrumSolver(even_zeros_dfa, 3)
        out = list(solver.enumerate())
        assert out[0] == ()
        lengths = [len(w) for w in out]
        assert lengths == sorted(lengths)
        assert len(out) == len(set(out))

    def test_sampling_support(self, even_zeros_dfa, rng):
        solver = SpectrumSolver(even_zeros_dfa, 4, rng=rng)
        support = [
            w
            for length in range(5)
            for w in words_of_length(even_zeros_dfa, length)
        ]
        samples = [solver.sample() for _ in range(len(support) * 60)]
        result = chi_square_uniformity(samples, support)
        assert not result.rejects_uniformity()

    def test_empty(self, rng):
        solver = SpectrumSolver(NFA.empty_language("01"), 4, rng=rng)
        assert solver.count() == 0
        with pytest.raises(EmptyWitnessSetError):
            solver.sample()

    def test_random_ufa_agrees_with_exact(self, rng):
        ufa = random_ufa(6, rng=5, ensure_nonempty_length=4)
        solver = SpectrumSolver(ufa, 5, rng=rng)
        assert solver.count() == solver.count_exact()


class TestSpectrumSolverNfa:
    def test_approx_count_tracks_exact(self, endswith_one_nfa, rng):
        solver = SpectrumSolver(endswith_one_nfa, 7, delta=0.3, rng=rng, params=FAST)
        exact = solver.count_exact()
        assert exact == sum(2**length - 1 for length in range(8))
        estimate = solver.count()
        assert abs(estimate - exact) <= 0.35 * exact

    def test_sample_is_witness(self, endswith_one_nfa, rng):
        solver = SpectrumSolver(endswith_one_nfa, 6, delta=0.3, rng=rng, params=FAST)
        for _ in range(5):
            w = solver.sample()
            assert len(w) <= 6
            assert endswith_one_nfa.accepts(w)

    def test_enumeration_complete(self, endswith_one_nfa):
        solver = SpectrumSolver(endswith_one_nfa, 4)
        out = list(solver.enumerate())
        assert len(out) == sum(2**length - 1 for length in range(5))
        assert len(out) == len(set(out))
