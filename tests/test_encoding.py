"""Unit tests for the binary-alphabet encoding (repro.automata.encoding)."""

from __future__ import annotations

import pytest

from repro.automata.encoding import (
    BinaryEncodedNFA,
    code_width,
    decode_word,
    encode_word,
    symbol_codes,
)
from repro.automata.nfa import NFA, word
from repro.automata.random_gen import random_nfa
from repro.automata.unambiguous import is_unambiguous
from repro.core.exact import count_words_exact
from repro.errors import InvalidAutomatonError


class TestCodes:
    def test_width(self):
        assert code_width(1) == 1
        assert code_width(2) == 1
        assert code_width(3) == 2
        assert code_width(4) == 2
        assert code_width(5) == 3

    def test_codes_distinct_fixed_width(self):
        codes = symbol_codes("abcde")
        widths = {len(code) for code in codes.values()}
        assert widths == {3}
        assert len(set(codes.values())) == 5

    def test_roundtrip(self):
        codes = symbol_codes("abc")
        w = word("cabba")
        assert decode_word(encode_word(w, codes), codes) == w

    def test_decode_rejects_bad_length(self):
        codes = symbol_codes("abc")
        with pytest.raises(InvalidAutomatonError):
            decode_word(("0",), codes)

    def test_decode_rejects_unused_codeword(self):
        codes = symbol_codes("abc")  # width 2; '11' unused
        with pytest.raises(InvalidAutomatonError):
            decode_word(("1", "1"), codes)

    def test_encode_unknown_symbol(self):
        codes = symbol_codes("ab")
        with pytest.raises(InvalidAutomatonError):
            encode_word(word("x"), codes)


class TestBinaryEncodedNFA:
    def test_counts_transfer(self):
        original = NFA(
            ["s", "f"],
            ["a", "b", "c"],
            [("s", "a", "f"), ("s", "b", "f"), ("f", "c", "s")],
            "s",
            ["f"],
        )
        encoded = BinaryEncodedNFA(original)
        for n in range(4):
            assert count_words_exact(original, n) == count_words_exact(
                encoded.nfa, encoded.encoded_length(n)
            )

    def test_membership_transfers(self):
        original = NFA(
            ["s", "f"],
            ["a", "b", "c"],
            [("s", "a", "f"), ("f", "b", "f")],
            "s",
            ["f"],
        )
        encoded = BinaryEncodedNFA(original)
        w = word("abb")
        assert original.accepts(w)
        assert encoded.nfa.accepts(encoded.encode(w))

    def test_non_codeword_lengths_rejected(self):
        original = NFA(["s", "f"], ["a", "b", "c"], [("s", "a", "f")], "s", ["f"])
        encoded = BinaryEncodedNFA(original)
        # width 2: no word of odd length may be accepted.
        assert count_words_exact(encoded.nfa, 1) == 0

    def test_binary_alphabet_passthrough_counts(self):
        original = NFA(
            ["s"], ["0", "1"], [("s", "0", "s"), ("s", "1", "s")], "s", ["s"]
        )
        encoded = BinaryEncodedNFA(original)
        assert encoded.width == 1
        for n in range(4):
            assert count_words_exact(original, n) == count_words_exact(encoded.nfa, n)

    def test_unambiguity_preserved(self, rng):
        """Each original run maps to exactly one encoded run, so UFA→UFA."""
        from repro.automata.random_gen import random_ufa

        for _ in range(5):
            ufa = random_ufa(5, alphabet="abc", rng=rng)
            encoded = BinaryEncodedNFA(ufa)
            assert is_unambiguous(encoded.nfa)

    def test_random_count_transfer(self, rng):
        for _ in range(5):
            nfa = random_nfa(5, alphabet="abc", density=1.2, rng=rng)
            encoded = BinaryEncodedNFA(nfa)
            for n in range(4):
                assert count_words_exact(nfa, n) == count_words_exact(
                    encoded.nfa, encoded.encoded_length(n)
                )
