"""The observability layer: registry, tracing, exposition, slow log.

Covers the PR's acceptance checklist:

* histogram percentile estimates against exact quantiles;
* snapshot merging is associative (pool-wide aggregation is
  order-independent);
* trace propagation — a ``"trace": true`` request returns non-negative
  per-stage seconds whether executed in-process or across a pool;
* a golden test for the Prometheus text exposition;
* slow-query threshold behavior, including the server's JSONL sink;
* the classic ``StoreStats.as_dict()`` / ``WitnessSetCache.stats()``
  views stay intact on top of the registry re-base.
"""

from __future__ import annotations

import json
import math
import random
import socket

import pytest

from repro import obs
from repro.obs import names as metric_names

SPEC = {"kind": "regex", "pattern": "(ab|ba)*", "alphabet": "ab", "n": 12}


@pytest.fixture(autouse=True)
def fresh_registry():
    """Each test sees its own registry with recording enabled."""
    obs.set_enabled(True)
    obs.reset_metrics()
    yield
    obs.set_enabled(True)
    obs.reset_metrics()


# ----------------------------------------------------------------------
# Registry basics
# ----------------------------------------------------------------------


class TestRegistry:
    def test_counter_gauge_roundtrip(self):
        registry = obs.metrics()
        registry.counter("c_total").inc()
        registry.counter("c_total").inc(4)
        registry.gauge("g").set(7)
        registry.gauge("g").dec(2)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["c_total"] == 5
        assert snapshot["gauges"]["g"] == 5

    def test_labels_make_distinct_series(self):
        registry = obs.metrics()
        registry.counter("ops_total", labels={"op": "sample"}).inc()
        registry.counter("ops_total", labels={"op": "count"}).inc(2)
        counters = registry.snapshot()["counters"]
        assert counters['ops_total{op="sample"}'] == 1
        assert counters['ops_total{op="count"}'] == 2

    def test_series_key_sorts_labels(self):
        assert (
            obs.series_key("m", {"b": "2", "a": "1"})
            == 'm{a="1",b="2"}'
        )

    def test_series_key_escapes_label_values(self):
        key = obs.series_key("m", {"v": 'say "hi"\\now'})
        assert key == 'm{v="say \\"hi\\"\\\\now"}'
        # The rendered exposition stays one well-formed line per series.
        registry = obs.metrics()
        registry.counter("m", labels={"v": 'say "hi"\\now'}).inc()
        text = obs.render_prometheus(registry.snapshot())
        line = next(l for l in text.splitlines() if l.startswith("m{"))
        assert line == 'm{v="say \\"hi\\"\\\\now"} 1'

    def test_kind_mismatch_raises(self):
        registry = obs.metrics()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")

    def test_kill_switch_stops_recording(self):
        registry = obs.metrics()
        counter = registry.counter("gated_total")
        histogram = registry.histogram("gated_seconds")
        obs.set_enabled(False)
        counter.inc()
        histogram.record(1.0)
        assert counter.value == 0
        assert histogram.count == 0
        obs.set_enabled(True)
        counter.inc()
        assert counter.value == 1

    def test_always_counter_ignores_kill_switch(self):
        counter = obs.Counter(always=True)
        obs.set_enabled(False)
        counter.inc(3)
        assert counter.value == 3

    def test_registry_always_counter_ignores_kill_switch(self):
        counter = obs.metrics().counter("functional_total", always=True)
        obs.set_enabled(False)
        counter.inc(2)
        assert obs.metrics().snapshot()["counters"]["functional_total"] == 2


# ----------------------------------------------------------------------
# Histogram percentiles vs exact quantiles
# ----------------------------------------------------------------------


class TestHistogramAccuracy:
    def test_percentiles_match_exact_quantiles(self):
        rng = random.Random(20190621)
        samples = [rng.lognormvariate(-4.0, 1.2) for _ in range(5000)]
        histogram = obs.Histogram()
        for value in samples:
            histogram.record(value)
        ordered = sorted(samples)
        for quantile in (0.50, 0.95, 0.99):
            exact = ordered[min(len(ordered) - 1, int(quantile * len(ordered)))]
            estimate = histogram.percentile(quantile)
            # Log buckets at 4/doubling bound the relative error at the
            # ~19% bucket width; interpolation does much better in
            # practice.
            assert estimate == pytest.approx(exact, rel=0.2)

    def test_exact_count_sum_max(self):
        histogram = obs.Histogram()
        for value in (0.5, 1.5, 2.5):
            histogram.record(value)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(4.5)
        assert histogram.max == 2.5

    def test_zero_and_negative_land_in_zero_bucket(self):
        histogram = obs.Histogram()
        histogram.record(0.0)
        histogram.record(-1.0)
        assert histogram.count == 2
        assert histogram.percentile(0.5) == 0.0

    def test_percentile_clamped_to_max(self):
        histogram = obs.Histogram()
        histogram.record(1.0)
        assert histogram.percentile(0.99) <= histogram.max


# ----------------------------------------------------------------------
# Merge associativity
# ----------------------------------------------------------------------


def _snapshot_with(counter: float, histogram_values: list[float]) -> dict:
    registry = obs.MetricsRegistry()
    registry.counter("c_total").inc(counter)
    registry.gauge("depth").inc(counter)
    hist = registry.histogram("h_seconds")
    for value in histogram_values:
        hist.record(value)
    return registry.snapshot()


class TestMerge:
    def test_merge_is_associative(self):
        a = _snapshot_with(1, [0.001, 0.01])
        b = _snapshot_with(2, [0.1])
        c = _snapshot_with(4, [1.0, 10.0, 0.5])
        left = obs.merge_snapshots([obs.merge_snapshots([a, b]), c])
        right = obs.merge_snapshots([a, obs.merge_snapshots([b, c])])
        # Histogram sums are float additions, associative only up to
        # rounding; everything else must match exactly.
        left_sum = left["histograms"]["h_seconds"].pop("sum")
        right_sum = right["histograms"]["h_seconds"].pop("sum")
        assert left == right
        assert left_sum == pytest.approx(right_sum)
        assert left["counters"]["c_total"] == 7
        assert left["gauges"]["depth"] == 7
        assert left["histograms"]["h_seconds"]["count"] == 6

    def test_merged_percentiles_equal_union(self):
        values_a = [0.002, 0.004, 0.008]
        values_b = [0.5, 1.0]
        merged = obs.merge_snapshots(
            [_snapshot_with(0, values_a), _snapshot_with(0, values_b)]
        )
        union = obs.Histogram()
        for value in values_a + values_b:
            union.record(value)
        restored = obs.Histogram.from_dict(merged["histograms"]["h_seconds"])
        for quantile in (0.5, 0.95):
            assert restored.percentile(quantile) == pytest.approx(
                union.percentile(quantile)
            )

    def test_empty_snapshots_are_ignored(self):
        merged = obs.merge_snapshots([{}, _snapshot_with(3, []), {}])
        assert merged["counters"]["c_total"] == 3


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------


class TestTracing:
    def test_span_stages_accumulate(self):
        with obs.request_span() as span:
            span.add("execution", 0.25)
            span.add("execution", 0.25)
            with span.stage("serialization"):
                pass
        stages = span.as_dict()
        assert stages["execution"] == pytest.approx(0.5)
        assert stages["serialization"] >= 0.0

    def test_negative_seconds_are_clamped(self):
        with obs.request_span() as span:
            span.add("queue_wait", -1.0)
        assert span.as_dict()["queue_wait"] == 0.0

    def test_null_span_when_disabled(self):
        obs.set_enabled(False)
        with obs.request_span() as span:
            span.add("execution", 1.0)
        assert span is obs.NULL_SPAN
        assert span.as_dict() == {}

    def test_add_stage_outside_span_feeds_histogram(self):
        obs.add_stage(metric_names.STAGE_LOWERING, 0.125)
        key = obs.series_key(
            metric_names.STAGE_SECONDS,
            {"stage": metric_names.STAGE_LOWERING},
        )
        assert obs.metrics().snapshot()["histograms"][key]["count"] == 1

    @pytest.mark.parametrize("workers", [0, 1, 4])
    def test_trace_propagates_across_workers(self, workers):
        from repro.service.engine import Engine

        with Engine(workers=workers, store_root=False) as engine:
            responses = engine.execute(
                [
                    {
                        "id": index,
                        "op": "sample",
                        "spec": SPEC,
                        "seed": index,
                        "k": 2,
                        "trace": True,
                    }
                    for index in range(3)
                ]
            )
        assert len(responses) == 3
        for response in responses:
            assert response["ok"], response
            timing = response.get("timing")
            assert timing, "trace: true must attach a timing breakdown"
            assert set(timing) <= set(metric_names.STAGES)
            assert all(seconds >= 0.0 for seconds in timing.values())
            assert metric_names.STAGE_EXECUTION in timing
            assert metric_names.STAGE_QUEUE_WAIT in timing

    def test_untraced_requests_carry_no_timing(self):
        from repro.service.engine import Engine

        with Engine(workers=0, store_root=False) as engine:
            (response,) = engine.execute(
                [{"id": 1, "op": "count", "spec": SPEC}]
            )
        assert response["ok"]
        assert "timing" not in response


# ----------------------------------------------------------------------
# Exposition
# ----------------------------------------------------------------------


GOLDEN_SNAPSHOT = {
    "counters": {'repro_requests_total{op="sample"}': 3},
    "gauges": {"repro_server_queue_depth": 2},
    "histograms": {
        "repro_request_seconds": {
            "count": 2,
            "sum": 3.0,
            "max": 2.0,
            "buckets": {"0": 2},
        }
    },
}

GOLDEN_PROMETHEUS = (
    "# TYPE repro_requests_total counter\n"
    'repro_requests_total{op="sample"} 3\n'
    "# TYPE repro_server_queue_depth gauge\n"
    "repro_server_queue_depth 2\n"
    "# TYPE repro_request_seconds summary\n"
    'repro_request_seconds{quantile="0.5"} 0.9204482076268572\n'
    'repro_request_seconds{quantile="0.95"} 0.9920448207626857\n'
    'repro_request_seconds{quantile="0.99"} 0.9984089641525371\n'
    "repro_request_seconds_sum 3.0\n"
    "repro_request_seconds_count 2\n"
    "repro_request_seconds_max 2.0\n"
)


class TestExposition:
    def test_prometheus_golden(self):
        assert obs.render_prometheus(GOLDEN_SNAPSHOT) == GOLDEN_PROMETHEUS

    def test_render_text_units(self):
        text = obs.render_text(GOLDEN_SNAPSHOT)
        assert 'repro_requests_total{op="sample"}' in text
        assert "p95=0.992045s" in text  # latency histograms carry seconds
        assert obs.render_text({}) == "(no metrics recorded)\n"

    def test_every_declared_name_is_prometheus_safe(self):
        for attribute in metric_names.__all__:
            value = getattr(metric_names, attribute)
            if attribute.startswith("STAGE") or attribute == "STAGES":
                continue
            assert isinstance(value, str)
            assert value.startswith("repro_"), value
            assert " " not in value and "{" not in value


# ----------------------------------------------------------------------
# Slow-query log
# ----------------------------------------------------------------------


class TestSlowLog:
    def test_threshold(self, tmp_path):
        log = obs.SlowQueryLog(str(tmp_path / "slow.jsonl"), threshold_seconds=0.5)
        assert not log.maybe_record(0.4, {"id": 1})
        assert log.maybe_record(0.6, {"id": 2, "op": "sample"})
        lines = (tmp_path / "slow.jsonl").read_text().splitlines()
        assert len(lines) == 1
        event = json.loads(lines[0])
        assert event["id"] == 2 and event["op"] == "sample"

    def test_from_env(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        log = obs.slow_log_from_env(
            {"REPRO_SLOW_QUERY_LOG": path, "REPRO_SLOW_QUERY_MS": "250"}
        )
        assert log is not None
        assert log.threshold_seconds == pytest.approx(0.25)
        assert obs.slow_log_from_env({}) is None

    def test_serve_flag_resolution(self, tmp_path, monkeypatch):
        from repro.cli import _resolve_slow_query_log

        monkeypatch.delenv("REPRO_SLOW_QUERY_LOG", raising=False)
        monkeypatch.delenv("REPRO_SLOW_QUERY_MS", raising=False)
        # Neither flag: the server builds its own log from the env.
        assert _resolve_slow_query_log(None, None) is None
        # --slow-query-ms with no path anywhere is a usage error.
        with pytest.raises(SystemExit):
            _resolve_slow_query_log(None, 250)
        flag_path = str(tmp_path / "flag.jsonl")
        log = _resolve_slow_query_log(flag_path, 250)
        assert log.path == flag_path
        assert log.threshold_seconds == pytest.approx(0.25)
        env_path = str(tmp_path / "env.jsonl")
        monkeypatch.setenv("REPRO_SLOW_QUERY_LOG", env_path)
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "500")
        # --slow-query-ms alone adjusts the env-configured log's threshold.
        log = _resolve_slow_query_log(None, 100)
        assert log.path == env_path
        assert log.threshold_seconds == pytest.approx(0.1)
        # A path flag matching the env keeps the env threshold.
        log = _resolve_slow_query_log(env_path, None)
        assert log.threshold_seconds == pytest.approx(0.5)

    def test_server_writes_slow_events(self, tmp_path):
        from repro.service.client import ServiceClient
        from repro.service.engine import Engine
        from repro.service.server import start_tcp_server_thread

        path = tmp_path / "slow.jsonl"
        engine = Engine(workers=0, store_root=False)
        thread, (host, port) = start_tcp_server_thread(
            engine,
            slow_query_log=obs.SlowQueryLog(str(path), threshold_seconds=0.0),
        )
        try:
            with ServiceClient(host, port) as client:
                client.result("sample", SPEC, seed=1, k=2, trace=True)
        finally:
            with ServiceClient(host, port) as client:
                client.request("shutdown")
            thread.join(timeout=10)
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert events, "threshold 0 records every request"
        sample = next(e for e in events if e.get("op") == "sample")
        assert sample["total_seconds"] >= 0.0
        assert metric_names.STAGE_EXECUTION in (sample.get("timing") or {})


# ----------------------------------------------------------------------
# Classic stats views stay intact on the registry re-base
# ----------------------------------------------------------------------


class TestBackCompatViews:
    def test_store_stats_as_dict(self):
        from repro.service.store import StoreStats

        stats = StoreStats()
        stats.hits += 2
        stats.misses += 1
        stats.extra["mmap_hits"] = 1
        view = stats.as_dict()
        assert view["hits"] == 2 and view["misses"] == 1
        assert set(view) == {
            "hits", "misses", "stores", "evictions", "corrupt", "skipped"
        }
        assert stats.extra["mmap_hits"] == 1
        # The registry mirrored the functional counters.
        counters = obs.metrics().snapshot()["counters"]
        assert counters[metric_names.STORE_HITS] == 2
        assert counters[metric_names.STORE_MISSES] == 1

    def test_witness_set_cache_stats(self):
        from repro.service.protocol import WitnessSetCache, spec_key

        cache = WitnessSetCache(max_resident=4)
        cache.get(spec_key(SPEC), SPEC)
        cache.get(spec_key(SPEC), SPEC)
        view = cache.stats()
        assert view["hits"] == 1 and view["misses"] == 1
        assert view["resident"] == 1
        counters = obs.metrics().snapshot()["counters"]
        assert counters[metric_names.CACHE_HITS] == 1
        assert counters[metric_names.CACHE_MISSES] == 1

    def test_store_stats_exact_under_kill_switch(self):
        from repro.service.store import StoreStats

        obs.set_enabled(False)
        stats = StoreStats()
        stats.hits += 3
        assert stats.as_dict()["hits"] == 3  # the functional view is exact
        # ... and the mirrored registry series tracks it even with
        # REPRO_OBS off: the snapshot never diverges from the exact view.
        counters = obs.metrics().snapshot()["counters"]
        assert counters[metric_names.STORE_HITS] == 3
        obs.set_enabled(True)

    def test_cache_counters_exact_under_kill_switch(self):
        from repro.service.protocol import WitnessSetCache, spec_key

        obs.set_enabled(False)
        cache = WitnessSetCache(max_resident=4)
        cache.get(spec_key(SPEC), SPEC)
        cache.get(spec_key(SPEC), SPEC)
        counters = obs.metrics().snapshot()["counters"]
        assert counters[metric_names.CACHE_HITS] == cache.hits == 1
        assert counters[metric_names.CACHE_MISSES] == cache.misses == 1
        obs.set_enabled(True)


# ----------------------------------------------------------------------
# The serving surfaces: stats op, metrics endpoint, CLI
# ----------------------------------------------------------------------


@pytest.fixture()
def live_server():
    from repro.service.engine import Engine
    from repro.service.server import start_tcp_server_thread

    engine = Engine(workers=2, store_root=False)
    thread, (host, port) = start_tcp_server_thread(engine)
    yield host, port
    from repro.service.client import ServiceClient

    with ServiceClient(host, port) as client:
        client.request("shutdown")
    thread.join(timeout=10)
    engine.close()


class TestServingSurfaces:
    def test_stats_op_aggregates_pool(self, live_server):
        from repro.service.client import ServiceClient

        host, port = live_server
        with ServiceClient(host, port) as client:
            for index in range(4):
                client.result("sample", SPEC, seed=index, k=2)
            stats = client.result("stats")
            detailed = client.result("stats", per_worker=True)
        assert stats["served"] >= 4
        assert stats["engine"]["workers"] == 2
        counters = stats["metrics"]["counters"]
        sample_series = obs.series_key(
            metric_names.PROTOCOL_REQUESTS, {"op": "sample"}
        )
        assert counters[sample_series] == 4
        assert any(
            key.startswith(metric_names.REQUEST_SECONDS)
            for key in stats["metrics"]["histograms"]
        )
        assert len(detailed["workers"]) == 2

    def test_metrics_endpoint_scrapes(self, live_server):
        from repro.service.client import ServiceClient

        host, port = live_server
        with ServiceClient(host, port) as client:
            client.result("sample", SPEC, seed=9, k=1)
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n")
            payload = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                payload += chunk
        head, _, body = payload.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.0 200 OK")
        assert b"text/plain; version=0.0.4" in head
        text = body.decode("utf-8")
        assert "# TYPE repro_server_requests_total counter" in text
        assert 'repro_request_seconds{quantile="0.95"}' in text

    def test_scrape_during_load_steals_no_responses(self, live_server):
        """A Prometheus scrape rides the pump queue, so it can never
        consume the worker pool's shared result queue concurrently with
        an in-flight batch (which would silently drop that batch's
        responses and hang the clients)."""
        import threading

        from repro.service.client import ServiceClient

        host, port = live_server
        scrape_errors: list[Exception] = []

        def scrape_loop() -> None:
            try:
                for _ in range(5):
                    with socket.create_connection((host, port), timeout=10) as sock:
                        sock.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
                        while sock.recv(65536):
                            pass
            except Exception as error:  # pragma: no cover - fails the test
                scrape_errors.append(error)

        scraper = threading.Thread(target=scrape_loop)
        scraper.start()
        try:
            with ServiceClient(host, port, timeout=30.0) as client:
                for index in range(20):
                    witnesses = client.result("sample", SPEC, seed=index, k=1)
                    assert len(witnesses) == 1
        finally:
            scraper.join(timeout=30)
        assert not scraper.is_alive()
        assert not scrape_errors

    def test_stats_cli_renders(self, live_server, capsys):
        from repro.cli import main

        host, port = live_server
        assert main(["stats", "--host", host, "--port", str(port)]) == 0
        out = capsys.readouterr().out
        assert "served" in out
        assert "repro_server_requests_total" in out
        assert main(
            ["stats", "--host", host, "--port", str(port), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "metrics" in payload and "engine" in payload


# ----------------------------------------------------------------------
# Bucket math sanity (implementation invariants the merge relies on)
# ----------------------------------------------------------------------


def test_bucket_width_bounds_percentile_error():
    """One bucket spans a factor of 2**0.25 ≈ 1.19, so any in-bucket
    estimate is within ~19% of any sample in that bucket."""
    histogram = obs.Histogram()
    value = 0.0123
    histogram.record(value)
    estimate = histogram.percentile(0.5)
    assert estimate <= value
    assert estimate >= value / math.pow(2, 1 / 4)
