"""Tests for the rejection-free almost-uniform generator."""

from __future__ import annotations

import pytest

from repro.automata.nfa import NFA
from repro.automata.operations import words_of_length
from repro.automata.random_gen import ambiguity_blowup, contains_pattern_nfa
from repro.core.almost_uniform import AlmostUniformGenerator, total_variation_from_uniform
from repro.core.fpras import FprasParameters
from repro.core.plvug import LasVegasUniformGenerator
from repro.errors import EmptyWitnessSetError

FAST = FprasParameters(sample_size=48)


class TestAlmostUniform:
    def test_samples_are_witnesses(self, rng):
        nfa = ambiguity_blowup(7)
        n = 14
        generator = AlmostUniformGenerator(nfa, n, delta=0.3, rng=rng, params=FAST)
        stripped = nfa.without_epsilon()
        for w in generator.sample_many(40):
            assert stripped.accepts(w)
            assert len(w) == n

    def test_never_fails(self, rng):
        """The whole point: no rejection branch, every call returns."""
        nfa = contains_pattern_nfa("11")
        generator = AlmostUniformGenerator(nfa, 10, delta=0.3, rng=rng, params=FAST)
        assert len(generator.sample_many(100)) == 100

    def test_empty_raises(self, rng):
        generator = AlmostUniformGenerator(NFA.empty_language("01"), 4, rng=rng)
        with pytest.raises(EmptyWitnessSetError):
            generator.generate()

    def test_exact_regime_is_uniform(self, even_zeros_dfa, rng):
        generator = AlmostUniformGenerator(even_zeros_dfa, 4, rng=rng, params=FAST)
        support = set(words_of_length(even_zeros_dfa, 4))
        seen = set(generator.sample_many(200))
        assert seen == support

    def test_close_to_uniform_but_plvug_closer(self, rng):
        """The documented trade: the PLVUG's rejection buys exactness.

        On a small support we measure total-variation distance from
        uniform for both; the PLVUG must not be (meaningfully) worse,
        and the almost-uniform one must still be within a loose bound.
        """
        nfa = ambiguity_blowup(6)
        n = 12
        support = words_of_length(nfa, n)
        draws = len(support) * 40

        almost = AlmostUniformGenerator(nfa, n, delta=0.3, rng=1, params=FAST)
        almost_tv = total_variation_from_uniform(almost.sample_many(draws), support)

        plvug = LasVegasUniformGenerator(nfa, n, delta=0.3, rng=1, params=FAST)
        plvug_tv = total_variation_from_uniform(plvug.sample_many(draws), support)

        assert almost_tv < 0.25          # close to uniform
        assert plvug_tv <= almost_tv + 0.05  # rejection never hurts


class TestTotalVariationHelper:
    def test_zero_for_perfect(self):
        support = ["a", "b"]
        assert total_variation_from_uniform(["a", "b"] * 50, support) == 0.0

    def test_max_for_degenerate(self):
        support = ["a", "b"]
        assert total_variation_from_uniform(["a"] * 100, support) == pytest.approx(0.5)

    def test_empty_support_rejected(self):
        with pytest.raises(ValueError):
            total_variation_from_uniform([], [])
