"""Tests for the spanner combinators and the FPRAS spectrum extension."""

from __future__ import annotations

import pytest

from repro.errors import InvalidAutomatonError
from repro.spanners.combinators import (
    alt,
    anything,
    build,
    capture,
    lit,
    rep,
    seq,
    sym_class,
)
from repro.spanners.evaluation import SpannerEvaluator
from repro.spanners.spans import Span


ALPHABET = "abcd"


def evaluate(expr, document: str):
    eva = build(expr, ALPHABET)
    return SpannerEvaluator(eva, document, rng=0)


class TestCombinatorMatching:
    def test_literal_whole_document(self):
        expr = seq(lit("ab"), capture("X", lit("c")), lit("d"))
        evaluator = evaluate(expr, "abcd")
        mappings = list(evaluator.mappings())
        assert [m["X"] for m in mappings] == [Span(3, 4)]

    def test_no_match(self):
        expr = seq(lit("ab"), capture("X", lit("c")))
        evaluator = evaluate(expr, "abd")
        assert list(evaluator.mappings()) == []
        assert evaluator.sample(0) is None

    def test_class_and_alternation(self):
        expr = seq(
            capture("X", alt(lit("a"), lit("b"))),
            sym_class("cd"),
        )
        for document in ("ac", "bd"):
            evaluator = evaluate(expr, document)
            mappings = list(evaluator.mappings())
            assert len(mappings) == 1
            assert mappings[0]["X"] == Span(1, 2)

    def test_repetition_star(self):
        expr = seq(rep(lit("a")), capture("X", lit("b")))
        evaluator = evaluate(expr, "aaab")
        assert [m["X"] for m in evaluator.mappings()] == [Span(4, 5)]

    def test_repetition_plus(self):
        expr = seq(rep(lit("a"), min_count=1), capture("X", lit("b")))
        assert list(evaluate(expr, "b").mappings()) == []
        assert len(list(evaluate(expr, "ab").mappings())) == 1

    def test_anything_padding(self):
        """The classic extraction shape: Σ* ⟨X: ...⟩ Σ*."""
        expr = seq(anything(ALPHABET), capture("X", lit("cc")), anything(ALPHABET))
        evaluator = evaluate(expr, "accbccd")
        spans = sorted((m["X"].start, m["X"].end) for m in evaluator.mappings())
        assert spans == [(2, 4), (5, 7)]

    def test_capture_of_variable_block(self):
        expr = seq(
            anything(ALPHABET),
            lit("ab"),
            capture("V", rep(sym_class("cd"), min_count=1)),
            anything(ALPHABET),
        )
        evaluator = evaluate(expr, "aabccd")
        contents = sorted(m["V"].content("aabccd") for m in evaluator.mappings())
        assert contents == ["c", "cc", "ccd"]

    def test_counting_and_sampling(self):
        expr = seq(anything(ALPHABET), capture("X", sym_class("ab")), anything(ALPHABET))
        document = "abca"
        evaluator = evaluate(expr, document)
        mappings = list(evaluator.mappings())
        assert evaluator.count_exact() == len(mappings) == 3
        assert evaluator.sample(1) in set(mappings)


class TestCombinatorValidation:
    def test_double_capture_rejected(self):
        with pytest.raises(InvalidAutomatonError):
            build(seq(capture("X", lit("a")), capture("X", lit("b"))), ALPHABET)

    def test_capture_in_repetition_rejected(self):
        with pytest.raises(InvalidAutomatonError):
            build(rep(capture("X", lit("a"))), ALPHABET)

    def test_conditional_capture_rejected(self):
        with pytest.raises(InvalidAutomatonError):
            build(alt(capture("X", lit("a")), lit("b")), ALPHABET)

    def test_foreign_symbol_rejected(self):
        with pytest.raises(InvalidAutomatonError):
            build(lit("z"), ALPHABET)


class TestFprasSpectrum:
    def test_spectrum_matches_exact(self):
        from repro.automata.random_gen import contains_pattern_nfa
        from repro.core.exact import count_words_exact
        from repro.core.fpras import FprasParameters, FprasState

        nfa = contains_pattern_nfa("11")
        state = FprasState(nfa, 12, delta=0.3, rng=2, params=FprasParameters(sample_size=48))
        spectrum = state.estimate_spectrum()
        assert len(spectrum) == 13
        for t in (0, 1, 6, 12):
            exact = count_words_exact(nfa, t)
            if exact == 0:
                assert spectrum[t] == 0
            else:
                assert abs(spectrum[t] - exact) <= 0.4 * exact

    def test_spectrum_bounds_checked(self, even_zeros_dfa):
        from repro.core.fpras import FprasState

        state = FprasState(even_zeros_dfa, 4, rng=0)
        with pytest.raises(ValueError):
            state.estimate_at_length(9)
