"""Coverage for the v1.1 deprecation shims and the JSON round-trips.

The free functions ``count_words`` / ``uniform_sample`` /
``uniform_samples`` must keep working (they delegate to the shared
WitnessSet cache) while warning; the graph serializer must survive
round-trips on randomized graphs, including tuple-labelled vertices.
"""

from __future__ import annotations

import random

import pytest

import repro
from repro.automata.operations import words_of_length
from repro.errors import EmptyWitnessSetError, InvalidAutomatonError
from repro.graphdb.graph import GraphDatabase, graph_from_json, graph_to_json


class TestDeprecationShims:
    def test_count_words_warns_and_counts(self, even_zeros_dfa):
        with pytest.warns(DeprecationWarning, match="count_words.*deprecated"):
            assert repro.count_words(even_zeros_dfa, 6) == 2**5

    def test_uniform_sample_warns_and_samples(self, even_zeros_dfa):
        support = set(words_of_length(even_zeros_dfa, 5))
        with pytest.warns(DeprecationWarning, match="uniform_sample.*deprecated"):
            assert repro.uniform_sample(even_zeros_dfa, 5, rng=3) in support

    def test_uniform_samples_warns_and_samples(self, even_zeros_dfa):
        support = set(words_of_length(even_zeros_dfa, 5))
        with pytest.warns(DeprecationWarning, match="uniform_samples.*deprecated"):
            drawn = repro.uniform_samples(even_zeros_dfa, 5, 7, rng=3)
        assert len(drawn) == 7
        assert set(drawn) <= support

    def test_uniform_samples_empty_raises_through_shim(self):
        from repro.automata.nfa import NFA

        with pytest.warns(DeprecationWarning):
            with pytest.raises(EmptyWitnessSetError):
                repro.uniform_samples(NFA.empty_language("01"), 3, 2)

    def test_shims_share_one_cached_witness_set(self, even_zeros_dfa):
        from repro.api import shared, shared_cache_clear

        shared_cache_clear()
        with pytest.warns(DeprecationWarning):
            repro.count_words(even_zeros_dfa, 6)
            repro.uniform_sample(even_zeros_dfa, 6, rng=0)
        ws = shared(even_zeros_dfa, 6)
        # Both shim calls hit the same facade: the second query reused the
        # preprocessing the first one built.
        assert ws.stats.hit_count > 0


def _random_graph(rng: random.Random) -> GraphDatabase:
    """A random graph mixing string, int and tuple vertex labels."""
    vertices: list = [f"v{i}" for i in range(rng.randrange(1, 5))]
    vertices += [(rng.randrange(3), rng.randrange(3)) for _ in range(rng.randrange(4))]
    vertices += list(range(rng.randrange(3)))
    labels = ["k", "f", ("edge", "w")][: rng.randrange(1, 4)]
    edges = []
    for _ in range(rng.randrange(0, 12)):
        edges.append(
            (rng.choice(vertices), rng.choice(labels), rng.choice(vertices))
        )
    return GraphDatabase(vertices, edges)


class TestGraphJsonRoundTrip:
    def test_randomized_round_trips(self, rng):
        for _ in range(25):
            graph = _random_graph(rng)
            restored = graph_from_json(graph_to_json(graph))
            assert restored.vertices == graph.vertices
            assert restored.edges == graph.edges
            assert restored.labels == graph.labels

    def test_indent_is_cosmetic(self, rng):
        graph = _random_graph(rng)
        assert graph_from_json(graph_to_json(graph, indent=2)).edges == graph.edges

    def test_rejects_foreign_documents(self):
        with pytest.raises(InvalidAutomatonError):
            graph_from_json('{"format": "not.a.graph", "version": 1}')
        with pytest.raises(InvalidAutomatonError):
            graph_from_json(
                '{"format": "repro.graph", "version": 99, "vertices": [], "edges": []}'
            )

    def test_nfa_json_round_trips_randomized(self, rng):
        from repro.automata.random_gen import random_nfa
        from repro.automata.serialization import nfa_from_json, nfa_to_json

        for _ in range(10):
            nfa = random_nfa(6, density=1.4, rng=rng)
            assert nfa_from_json(nfa_to_json(nfa)) == nfa
