"""Tests for document spanners (spans, eVAs, evaluation; Corollaries 6–7)."""

from __future__ import annotations

import pytest

from repro.errors import NotFunctionalError
from repro.spanners.eva import EVA, close_marker, extraction_eva, open_marker
from repro.spanners.evaluation import (
    EvalEvaRelation,
    EvalUevaRelation,
    SpannerEvaluator,
    compile_eva,
    decode_mapping,
    encode_mapping,
)
from repro.spanners.spans import Mapping, Span


class TestSpans:
    def test_content(self):
        assert Span(2, 4).content("abcde") == "bc"

    def test_empty_span(self):
        assert Span(3, 3).content("abcde") == ""

    def test_len(self):
        assert len(Span(1, 4)) == 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            Span(3, 2)
        with pytest.raises(ValueError):
            Span(0, 1)

    def test_out_of_document(self):
        with pytest.raises(ValueError):
            Span(1, 10).content("ab")

    def test_mapping_equality_hash(self):
        a = Mapping({"x": Span(1, 2)})
        b = Mapping({"x": Span(1, 2)})
        assert a == b and hash(a) == hash(b)

    def test_mapping_contents(self):
        m = Mapping({"x": Span(1, 3), "y": Span(3, 4)})
        assert m.contents("abc") == {"x": "ab", "y": "c"}


def capture_one_a() -> EVA:
    """x captures a single 'a' occurrence: open, read 'a', close."""
    return EVA(
        states=["scan", "opened", "pre_close", "closed"],
        initial="scan",
        finals=["closed"],
        letter_transitions=[
            ("scan", "a", "scan"),
            ("scan", "b", "scan"),
            ("opened", "a", "pre_close"),
            ("closed", "a", "closed"),
            ("closed", "b", "closed"),
        ],
        variable_transitions=[
            ("scan", [open_marker("x")], "opened"),
            ("pre_close", [close_marker("x")], "closed"),
        ],
    )


class TestEVA:
    def test_functional_accepts(self):
        assert capture_one_a().is_functional()

    def test_capture_one_a_mappings(self):
        evaluator = SpannerEvaluator(capture_one_a(), "aba", rng=0)
        spans = sorted((m["x"].start, m["x"].end) for m in evaluator.mappings())
        assert spans == [(1, 2), (3, 4)]

    def test_non_functional_detected(self):
        # A final state reachable with the variable never opened.
        bad = EVA(
            states=["s", "f"],
            initial="s",
            finals=["f"],
            letter_transitions=[("s", "a", "f")],
            variable_transitions=[("s", [open_marker("x")], "s")],
            variables=["x"],
        )
        assert not bad.is_functional()
        with pytest.raises(NotFunctionalError):
            bad.require_functional()

    def test_double_open_detected(self):
        bad = EVA(
            states=["s", "m", "f"],
            initial="s",
            finals=["f"],
            letter_transitions=[("m", "a", "f")],
            variable_transitions=[
                ("s", [open_marker("x"), close_marker("x")], "m"),
                ("m2" if False else "f", [open_marker("x")], "f"),
            ],
            variables=["x"],
        )
        assert not bad.is_functional()

    def test_extraction_builder_functional(self):
        eva = extraction_eva("ab", "X", content_symbols="cd", alphabet="abcd")
        assert eva.is_functional()


class TestCompileEva:
    def test_all_mappings_found(self):
        eva = extraction_eva("ab", "X", content_symbols="cd", alphabet="abcd")
        doc = "aabccdaabd"
        evaluator = SpannerEvaluator(eva, doc, rng=0)
        mappings = list(evaluator.mappings())
        # Occurrences of 'ab' at positions 2-3 and 8-9 (1-indexed): after
        # 'ab' at 2-3, content blocks from position 4: c, cc, ccd? content
        # chars are c/d: 'ccd' run of length 3 → spans [4,5⟩,[4,6⟩,[4,7⟩;
        # after 'ab' at 8-9: 'd' → [10,11⟩.
        spans = sorted((m["X"].start, m["X"].end) for m in mappings)
        assert spans == [(4, 5), (4, 6), (4, 7), (10, 11)]

    def test_contents_extracted(self):
        eva = extraction_eva("ab", "X", content_symbols="cd", alphabet="abcd")
        doc = "aabccdaabd"
        evaluator = SpannerEvaluator(eva, doc, rng=0)
        extracted = sorted(m.contents(doc)["X"] for m in evaluator.mappings())
        assert extracted == ["c", "cc", "ccd", "d"]

    def test_count_matches_enumeration(self):
        eva = extraction_eva("ab", "X", content_symbols="cd", alphabet="abcd")
        doc = "aabccdaabd"
        evaluator = SpannerEvaluator(eva, doc, rng=0)
        assert evaluator.count_exact() == len(list(evaluator.mappings()))

    def test_sampling_returns_real_mappings(self):
        eva = extraction_eva("ab", "X", content_symbols="cd", alphabet="abcd")
        doc = "aabccdaabd"
        evaluator = SpannerEvaluator(eva, doc, rng=0)
        universe = set(evaluator.mappings())
        for seed in range(5):
            assert evaluator.sample(seed) in universe

    def test_empty_result(self):
        eva = extraction_eva("ab", "X", content_symbols="cd", alphabet="abcd")
        evaluator = SpannerEvaluator(eva, "bbbb", rng=0)
        assert list(evaluator.mappings()) == []
        assert evaluator.sample(0) is None


class TestEncoding:
    def test_roundtrip(self):
        eva = extraction_eva("ab", "X", content_symbols="cd", alphabet="abcd")
        doc = "aabccd"
        mapping = Mapping({"X": Span(4, 6)})
        w = encode_mapping(eva, doc, mapping)
        assert len(w) == len(doc) + 1
        assert decode_mapping(eva, w) == mapping

    def test_relation_check(self):
        eva = extraction_eva("ab", "X", content_symbols="cd", alphabet="abcd")
        doc = "aabccd"
        relation = EvalEvaRelation()
        good = Mapping({"X": Span(4, 6)})
        bad = Mapping({"X": Span(1, 2)})
        assert relation.check((eva, doc), good)
        assert not relation.check((eva, doc), bad)

    def test_ueva_relation_on_unambiguous(self):
        eva = extraction_eva("ab", "X", content_symbols="cd", alphabet="abcd")
        doc = "aabccd"
        compiled = EvalUevaRelation().compile((eva, doc))
        assert compiled.length == len(doc) + 1
