"""Tests for the ``repro-lint`` static-analysis engine and its rules.

Each built-in rule gets a golden pair: one fixture that violates it and
one that is clean.  On top of that: suppression semantics (a reasoned
suppression silences, a reasonless one is itself a finding), the JSON
output schema, CLI exit codes, and the self-check — the repo's own
``src/repro`` tree must lint clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import _explain_rule, render_github
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import ENGINE_RULES, default_rules, run_lint
from repro.analysis.rules import (
    AccelIsolationRule,
    AsyncBlockingRule,
    BareExceptRule,
    ExportConsistencyRule,
    Int64OverflowRule,
    MetricsDisciplineRule,
    NondeterminismRule,
    ProtocolExhaustiveRule,
    SwallowedCancelRule,
    UnusedSymbolRule,
)

REPO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def lint_snippet(tmp_path, filename, source, rule):
    """Write ``source`` as ``filename`` and lint it with one rule."""
    path = tmp_path / filename
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return run_lint([path], rules=[rule])


def rules_hit(result):
    return {finding.rule for finding in result.findings}


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------


def test_default_rules_registered():
    rules = default_rules()
    ids = [rule.id for rule in rules]
    assert len(ids) == len(set(ids)), "duplicate rule ids"
    assert len(ids) >= 6, "the issue requires at least six project rules"
    assert set(ids) >= {
        "accel-isolation",
        "async-blocking",
        "metrics-discipline",
        "nondeterminism",
        "int64-overflow",
        "protocol-exhaustive",
        "bare-except",
        "swallowed-cancel",
        "export-consistency",
        "unused-symbol",
        # PR 10: the concurrency-safety pass.
        "guarded-by",
        "await-in-critical-section",
        "lock-order",
        "task-leak",
    }
    for rule in rules:
        assert rule.description, f"rule {rule.id} has no description"


def test_every_rule_ships_examples_that_parse():
    """--explain needs a violating and a clean snippet per rule, and
    both must at least be valid Python."""
    import ast as ast_module

    for rule in default_rules():
        assert rule.example_bad.strip(), f"rule {rule.id} has no bad example"
        assert rule.example_good.strip(), f"rule {rule.id} has no good example"
        ast_module.parse(rule.example_bad)
        ast_module.parse(rule.example_good)
        assert _explain_rule(rule), f"rule {rule.id} explains nothing"


# ----------------------------------------------------------------------
# accel-isolation
# ----------------------------------------------------------------------

ACCEL_LEAK_TOP = """\
import numpy as np


def fast(row):
    return np.asarray(row)
"""

ACCEL_LEAK_LAZY = """\
def fast(row):
    from numpy import asarray

    return asarray(row)
"""

ACCEL_LEAK_SUBMODULE = """\
import numpy.linalg
"""

ACCEL_CLEAN = """\
import math


def slow(row):
    return [math.sqrt(x) for x in row]
"""


def test_accel_isolation_flags_numpy_imports(tmp_path):
    for source in (ACCEL_LEAK_TOP, ACCEL_LEAK_LAZY, ACCEL_LEAK_SUBMODULE):
        result = lint_snippet(tmp_path, "core/kernel.py", source, AccelIsolationRule())
        assert rules_hit(result) == {"accel-isolation"}, source
        assert all(f.hint for f in result.findings)


def test_accel_isolation_allows_accel_module_and_clean_files(tmp_path):
    # The one sanctioned home for numpy imports...
    result = lint_snippet(
        tmp_path, "core/accel.py", ACCEL_LEAK_TOP, AccelIsolationRule()
    )
    assert result.ok, [f.message for f in result.findings]
    # ...and numpy-free modules anywhere.
    result = lint_snippet(tmp_path, "core/other.py", ACCEL_CLEAN, AccelIsolationRule())
    assert result.ok


# ----------------------------------------------------------------------
# async-blocking
# ----------------------------------------------------------------------

ASYNC_BLOCKING_BAD = """\
import time


async def handler(conn):
    time.sleep(0.1)
    print("served")
"""

ASYNC_BLOCKING_CLEAN = """\
import asyncio


async def handler(conn):
    await asyncio.sleep(0.1)

    def log_later(message):
        print(message)  # nested sync def: runs off-loop / via executor

    await asyncio.get_running_loop().run_in_executor(None, log_later, "served")
"""


def test_async_blocking_flags_sleep_and_print(tmp_path):
    result = lint_snippet(tmp_path, "srv.py", ASYNC_BLOCKING_BAD, AsyncBlockingRule())
    assert rules_hit(result) == {"async-blocking"}
    messages = " ".join(f.message for f in result.findings)
    assert "time.sleep" in messages
    assert "print" in messages
    assert all(f.hint for f in result.findings), "blocking findings carry fix hints"


def test_async_blocking_clean_and_nested_sync_exempt(tmp_path):
    result = lint_snippet(tmp_path, "srv.py", ASYNC_BLOCKING_CLEAN, AsyncBlockingRule())
    assert result.ok, [f.render() for f in result.findings]


def test_async_blocking_flags_engine_and_store_calls(tmp_path):
    source = (
        "async def pump(self):\n"
        "    responses = self.engine.execute(batch)\n"
        "    self.store.put(key, kernel)\n"
        "    return responses\n"
    )
    result = lint_snippet(tmp_path, "srv.py", source, AsyncBlockingRule())
    assert len(result.findings) == 2
    assert rules_hit(result) == {"async-blocking"}


# ----------------------------------------------------------------------
# metrics-discipline
# ----------------------------------------------------------------------

METRICS_DISCIPLINE_BAD = """\
from repro import obs


def serve_one(registry):
    registry.counter("repro_requests_total").inc()
    registry.histogram("repro_request_seconds").record(0.1)


async def resolve(self, pending, response):
    self.slow_query_log.record({"id": 1})
"""

METRICS_DISCIPLINE_CLEAN = """\
from repro import obs
from repro.obs import names as metric_names


def serve_one(registry):
    registry.counter(metric_names.SERVER_REQUESTS).inc()
    registry.histogram(metric_names.REQUEST_SECONDS).record(0.1)


async def resolve(self, pending, response, loop):
    # A bound-method *reference* handed to the executor, never a call.
    loop.run_in_executor(None, self.slow_query_log.record, {"id": 1})
"""


def test_metrics_discipline_flags_inline_names_and_async_log_writes(tmp_path):
    result = lint_snippet(
        tmp_path, "srv.py", METRICS_DISCIPLINE_BAD, MetricsDisciplineRule()
    )
    assert rules_hit(result) == {"metrics-discipline"}
    messages = " ".join(f.message for f in result.findings)
    assert "repro_requests_total" in messages
    assert "repro_request_seconds" in messages
    assert "slow-log" in messages
    assert len(result.findings) == 3


def test_metrics_discipline_clean_constants_and_executor(tmp_path):
    result = lint_snippet(
        tmp_path, "srv.py", METRICS_DISCIPLINE_CLEAN, MetricsDisciplineRule()
    )
    assert result.ok, [f.render() for f in result.findings]


def test_metrics_discipline_exempts_obs_package(tmp_path):
    source = 'metrics().counter("repro_internal_total").inc()\n'
    path = tmp_path / "repro" / "obs" / "registry.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    result = run_lint([path], rules=[MetricsDisciplineRule()])
    assert result.ok, [f.render() for f in result.findings]


# ----------------------------------------------------------------------
# nondeterminism
# ----------------------------------------------------------------------

NONDET_BAD = """\
import random


def pick(items):
    for item in {1, 2, 3}:
        random.shuffle(items)
    return hash(tuple(items))
"""

NONDET_CLEAN = """\
import hashlib


def pick(items):
    ordered = sorted(set(items))
    return hashlib.sha256(repr(ordered).encode()).hexdigest()
"""


def test_nondeterminism_flags_rng_hash_and_set_iteration(tmp_path):
    result = lint_snippet(tmp_path, "engine.py", NONDET_BAD, NondeterminismRule())
    messages = " ".join(f.message for f in result.findings)
    assert "random.shuffle" in messages
    assert "hash" in messages
    assert "set in hash order" in messages


def test_nondeterminism_clean(tmp_path):
    result = lint_snippet(tmp_path, "engine.py", NONDET_CLEAN, NondeterminismRule())
    assert result.ok, [f.render() for f in result.findings]


def test_nondeterminism_scoped_to_critical_modules(tmp_path):
    # The same ambient randomness in a non-contract module is fine.
    result = lint_snippet(tmp_path, "helpers.py", NONDET_BAD, NondeterminismRule())
    assert result.ok


# ----------------------------------------------------------------------
# int64-overflow
# ----------------------------------------------------------------------

OVERFLOW_BAD = """\
from array import array


def accumulate(counts):
    row = array("q", [0] * len(counts))
    for index, value in enumerate(counts):
        row[index] += value * 2
    row.append(counts[0] * counts[-1])
    return row
"""

OVERFLOW_CLEAN = """\
from array import array


def accumulate(counts):
    totals = [0] * len(counts)
    for index, value in enumerate(counts):
        totals[index] += value * 2
    return array("q", totals)
"""


def test_overflow_flags_arithmetic_into_q_array(tmp_path):
    result = lint_snippet(tmp_path, "kernel.py", OVERFLOW_BAD, Int64OverflowRule())
    assert len(result.findings) == 2  # the += and the .append
    assert rules_hit(result) == {"int64-overflow"}


def test_overflow_clean_list_accumulation(tmp_path):
    result = lint_snippet(tmp_path, "kernel.py", OVERFLOW_CLEAN, Int64OverflowRule())
    assert result.ok, [f.render() for f in result.findings]


# ----------------------------------------------------------------------
# protocol-exhaustive (project rule: needs a file *set*)
# ----------------------------------------------------------------------

PROTOCOL_TEMPLATE = """\
SAMPLE_OPS = frozenset({{"sample"}})
CONTROL_OPS = frozenset({{"ping"}})
CONNECTION_OPS = frozenset({{"cancel"}})
SERVICE_OPS = frozenset(
    SAMPLE_OPS | CONTROL_OPS | CONNECTION_OPS | {{{extra_ops}}}
)


def _execute_one(ws, request):
    op = request.get("op")
    if op in SAMPLE_OPS:
        return "sampled"
    if op == "count":
        return "counted"
    raise ValueError(op)
"""


def _write_protocol_fixture(tmp_path, extra_ops):
    service = tmp_path / "service"
    service.mkdir()
    (service / "protocol.py").write_text(
        PROTOCOL_TEMPLATE.format(extra_ops=extra_ops), encoding="utf-8"
    )
    return service


def test_protocol_exhaustive_clean(tmp_path):
    service = _write_protocol_fixture(tmp_path, '"count"')
    result = run_lint([service], rules=[ProtocolExhaustiveRule()])
    assert result.ok, [f.render() for f in result.findings]


def test_protocol_exhaustive_flags_unhandled_op(tmp_path):
    service = _write_protocol_fixture(tmp_path, '"count", "frobnicate"')
    result = run_lint([service], rules=[ProtocolExhaustiveRule()])
    assert rules_hit(result) == {"protocol-exhaustive"}
    assert any("frobnicate" in f.message for f in result.findings)


def test_protocol_exhaustive_flags_phantom_op(tmp_path):
    service = _write_protocol_fixture(tmp_path, '"count"')
    (service / "client.py").write_text(
        'def request(op):\n    return {"op": "mystery"}\n', encoding="utf-8"
    )
    result = run_lint([service], rules=[ProtocolExhaustiveRule()])
    assert any(
        "mystery" in f.message and "not in" in f.message for f in result.findings
    )


# ----------------------------------------------------------------------
# bare-except / swallowed-cancel
# ----------------------------------------------------------------------


def test_bare_except_flagged_and_typed_clean(tmp_path):
    bad = "def load(path):\n    try:\n        return open(path).read()\n    except:\n        return None\n"
    result = lint_snippet(tmp_path, "io_util.py", bad, BareExceptRule())
    assert rules_hit(result) == {"bare-except"}

    clean = bad.replace("except:", "except OSError:")
    result = lint_snippet(tmp_path, "io_util.py", clean, BareExceptRule())
    assert result.ok


SWALLOW_BAD = """\
import asyncio


async def wait_for(task):
    try:
        await task
    except asyncio.CancelledError:
        pass
"""


def test_swallowed_cancel_flagged_and_reraise_clean(tmp_path):
    result = lint_snippet(tmp_path, "tasks.py", SWALLOW_BAD, SwallowedCancelRule())
    assert rules_hit(result) == {"swallowed-cancel"}

    clean = SWALLOW_BAD.replace("        pass\n", "        raise\n")
    result = lint_snippet(tmp_path, "tasks.py", clean, SwallowedCancelRule())
    assert result.ok


# ----------------------------------------------------------------------
# export-consistency
# ----------------------------------------------------------------------


def _surface_path(tmp_path):
    # Any path containing /repro/service/ is in the designated API surface.
    return "repro/service/widgets.py"


def test_export_missing_all_flagged(tmp_path):
    source = "def public_helper():\n    return 1\n"
    result = lint_snippet(
        tmp_path, _surface_path(tmp_path), source, ExportConsistencyRule()
    )
    assert any("no __all__" in f.message for f in result.findings)


def test_export_stale_and_missing_names_flagged(tmp_path):
    source = (
        "def public_helper():\n"
        "    return 1\n"
        "\n"
        "\n"
        "def forgotten():\n"
        "    return 2\n"
        "\n"
        "\n"
        '__all__ = ["public_helper", "ghost"]\n'
    )
    result = lint_snippet(
        tmp_path, _surface_path(tmp_path), source, ExportConsistencyRule()
    )
    messages = " ".join(f.message for f in result.findings)
    assert "ghost" in messages  # listed but never bound
    assert "forgotten" in messages  # public but not listed


def test_export_clean(tmp_path):
    source = (
        "def public_helper():\n"
        "    return 1\n"
        "\n"
        "\n"
        '__all__ = ["public_helper"]\n'
    )
    result = lint_snippet(
        tmp_path, _surface_path(tmp_path), source, ExportConsistencyRule()
    )
    assert result.ok, [f.render() for f in result.findings]


# ----------------------------------------------------------------------
# unused-symbol
# ----------------------------------------------------------------------

UNUSED_BAD = """\
import json
import os


def dump():
    payload = {"a": 1}
    leftover = 3
    return json.dumps(payload)
    print("unreachable")
"""

UNUSED_CLEAN = """\
import json


def dump():
    payload = {"a": 1}
    return json.dumps(payload)
"""


def test_unused_symbols_flagged(tmp_path):
    result = lint_snippet(tmp_path, "mod.py", UNUSED_BAD, UnusedSymbolRule())
    messages = " ".join(f.message for f in result.findings)
    assert "'os' is never used" in messages
    assert "leftover" in messages
    assert "unreachable" in messages


def test_unused_clean(tmp_path):
    result = lint_snippet(tmp_path, "mod.py", UNUSED_CLEAN, UnusedSymbolRule())
    assert result.ok, [f.render() for f in result.findings]


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

SUPPRESSED_OK = """\
import time


async def handler():
    time.sleep(0.1)  # repro-lint: ignore[async-blocking] -- test fixture exercising suppression
"""

SUPPRESSED_NO_REASON = """\
import time


async def handler():
    time.sleep(0.1)  # repro-lint: ignore[async-blocking]
"""

SUPPRESSED_WILDCARD = """\
import time


async def handler():
    time.sleep(0.1)  # repro-lint: ignore[*] -- wildcard silences every rule here
"""


def test_reasoned_suppression_silences(tmp_path):
    result = lint_snippet(tmp_path, "srv.py", SUPPRESSED_OK, AsyncBlockingRule())
    assert result.ok
    assert result.suppressed == 1


def test_reasonless_suppression_is_a_finding(tmp_path):
    result = lint_snippet(
        tmp_path, "srv.py", SUPPRESSED_NO_REASON, AsyncBlockingRule()
    )
    # The target finding is silenced, but the naked suppression is not free.
    assert rules_hit(result) == {"bad-suppression"}
    assert result.suppressed == 1


def test_wildcard_suppression(tmp_path):
    result = lint_snippet(tmp_path, "srv.py", SUPPRESSED_WILDCARD, AsyncBlockingRule())
    assert result.ok
    assert result.suppressed == 1


def test_suppression_comment_inside_string_ignored(tmp_path):
    source = 'TEXT = "# repro-lint: ignore[*]"\n'
    result = lint_snippet(tmp_path, "mod.py", source, UnusedSymbolRule())
    assert result.ok
    assert result.suppressed == 0


def test_parse_error_reported_not_raised(tmp_path):
    result = lint_snippet(tmp_path, "broken.py", "def broken(:\n", UnusedSymbolRule())
    assert rules_hit(result) == {"parse-error"}
    assert "parse-error" in ENGINE_RULES


# ----------------------------------------------------------------------
# CLI: output formats and exit codes
# ----------------------------------------------------------------------


def test_cli_json_schema(tmp_path, capsys):
    bad = tmp_path / "srv.py"
    bad.write_text(ASYNC_BLOCKING_BAD, encoding="utf-8")
    code = lint_main(["--format", "json", str(bad)])
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert set(report) == {"version", "ok", "files", "rules", "suppressed", "findings"}
    assert report["version"] == 1
    assert report["ok"] is False
    assert report["files"] == 1
    assert isinstance(report["rules"], list) and len(report["rules"]) >= 6
    for finding in report["findings"]:
        assert set(finding) == {"rule", "path", "line", "col", "message", "hint"}
        assert isinstance(finding["line"], int) and finding["line"] >= 1


def test_cli_clean_exit_zero(tmp_path, capsys):
    clean = tmp_path / "mod.py"
    clean.write_text(UNUSED_CLEAN, encoding="utf-8")
    code = lint_main([str(clean)])
    assert code == 0
    assert capsys.readouterr().out.startswith("OK: ")


def test_cli_select_and_unknown_rule(tmp_path, capsys):
    bad = tmp_path / "srv.py"
    bad.write_text(ASYNC_BLOCKING_BAD, encoding="utf-8")
    code = lint_main(["--select", "bare-except", str(bad)])
    assert code == 0  # async-blocking not selected, so nothing fires
    capsys.readouterr()
    with pytest.raises(SystemExit) as excinfo:
        lint_main(["--select", "no-such-rule", str(bad)])
    assert excinfo.value.code == 2
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "async-blocking" in out
    assert len(out.strip().splitlines()) >= 6


def test_cli_github_format(tmp_path, capsys):
    bad = tmp_path / "srv.py"
    bad.write_text(ASYNC_BLOCKING_BAD, encoding="utf-8")
    code = lint_main(["--format", "github", str(bad)])
    assert code == 1
    out = capsys.readouterr().out
    annotations = [line for line in out.splitlines() if line.startswith("::error ")]
    assert annotations
    for line in annotations:
        assert "file=" in line and ",line=" in line and ",col=" in line
        assert "title=repro-lint [" in line
    assert out.strip().splitlines()[-1].startswith("FAIL: ")


def test_cli_github_format_clean(tmp_path, capsys):
    clean = tmp_path / "mod.py"
    clean.write_text(UNUSED_CLEAN, encoding="utf-8")
    assert lint_main(["--format", "github", str(clean)]) == 0
    out = capsys.readouterr().out
    assert "::error" not in out
    assert out.startswith("OK: ")


def test_github_annotation_escaping():
    from repro.analysis.findings import Finding

    finding = Finding(
        path="src/a,b.py",
        line=3,
        col=1,
        rule="demo",
        message="50% broken\nnext line",
        hint="",
    )
    rendered = render_github(finding)
    assert rendered.startswith("::error file=src/a%2Cb.py,line=3,col=1,")
    assert "50%25 broken%0Anext line" in rendered
    assert "\n" not in rendered


def test_cli_explain_known_and_unknown_rule(capsys):
    assert lint_main(["--explain", "guarded-by"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("guarded-by: ")
    assert "violates:" in out and "clean:" in out
    assert "# guarded-by: _lock" in out
    with pytest.raises(SystemExit) as excinfo:
        lint_main(["--explain", "no-such-rule"])
    assert excinfo.value.code == 2
    capsys.readouterr()


# ----------------------------------------------------------------------
# Self-check: the repo's own sources must be clean
# ----------------------------------------------------------------------


def test_repo_sources_lint_clean():
    result = run_lint([REPO_SRC])
    assert len(result.rules) >= 6
    assert result.ok, "repro-lint findings in src/repro:\n" + "\n".join(
        finding.render() for finding in result.findings
    )
    # Every suppression in the tree carries a reason (bad-suppression
    # would have fired otherwise), and some suppressions exist.
    assert result.suppressed >= 1
