"""Unit tests for ambiguity testing, certification and measurement."""

from __future__ import annotations

import pytest

from repro.automata.nfa import NFA, word
from repro.automata.operations import words_of_length
from repro.automata.random_gen import ambiguity_blowup, random_nfa, random_ufa
from repro.automata.unambiguous import (
    ambiguity_counts,
    disambiguate,
    is_unambiguous,
    require_unambiguous,
)
from repro.errors import AmbiguityError


class TestIsUnambiguous:
    def test_dfa_is_unambiguous(self, even_zeros_dfa):
        assert is_unambiguous(even_zeros_dfa)

    def test_classic_ambiguous(self, endswith_one_nfa):
        assert not is_unambiguous(endswith_one_nfa)

    def test_blowup_family_ambiguous(self):
        assert not is_unambiguous(ambiguity_blowup(2))

    def test_empty_language_unambiguous(self):
        assert is_unambiguous(NFA.empty_language("01"))

    def test_dead_nondeterminism_ignored(self):
        # Two runs exist for '0' but only one reaches a final state:
        # ambiguity must look at ACCEPTING runs only.
        nfa = NFA(
            ["s", "f", "dead"],
            ["0"],
            [("s", "0", "f"), ("s", "0", "dead")],
            "s",
            ["f"],
        )
        assert is_unambiguous(nfa)

    def test_parallel_paths_detected(self):
        # Two distinct accepting runs for '01'.
        nfa = NFA(
            ["s", "m1", "m2", "f"],
            ["0", "1"],
            [
                ("s", "0", "m1"),
                ("s", "0", "m2"),
                ("m1", "1", "f"),
                ("m2", "1", "f"),
            ],
            "s",
            ["f"],
        )
        assert not is_unambiguous(nfa)

    def test_agreement_with_run_counts(self, rng):
        """Oracle check: unambiguous ⟺ every accepted word has one run."""
        for _ in range(15):
            nfa = random_nfa(5, density=1.3, rng=rng).without_epsilon().trim()
            claimed = is_unambiguous(nfa)
            truly = all(
                nfa.count_accepting_runs(w) == 1
                for n in range(6)
                for w in words_of_length(nfa, n)
            )
            assert claimed == truly

    def test_random_ufa_generator_delivers(self, rng):
        for _ in range(10):
            assert is_unambiguous(random_ufa(7, rng=rng))


class TestRequireUnambiguous:
    def test_passes_through_ufa(self, even_zeros_dfa):
        out = require_unambiguous(even_zeros_dfa)
        assert not out.has_epsilon

    def test_raises_on_ambiguous(self, endswith_one_nfa):
        with pytest.raises(AmbiguityError):
            require_unambiguous(endswith_one_nfa)

    def test_error_mentions_context(self, endswith_one_nfa):
        with pytest.raises(AmbiguityError, match="my-operation"):
            require_unambiguous(endswith_one_nfa, context="my-operation")


class TestDisambiguate:
    def test_result_unambiguous_same_language(self, endswith_one_nfa):
        ufa = disambiguate(endswith_one_nfa)
        assert is_unambiguous(ufa)
        for w in ["", "0", "1", "0101", "0000"]:
            assert ufa.accepts(word(w)) == endswith_one_nfa.accepts(word(w))

    def test_blowup_family(self):
        amb = ambiguity_blowup(3)
        ufa = disambiguate(amb)
        assert is_unambiguous(ufa)
        for n in range(8):
            assert len(words_of_length(ufa, n)) == len(words_of_length(amb, n))


class TestAmbiguityCounts:
    def test_blowup_profile(self):
        amb = ambiguity_blowup(3)
        words, runs, max_runs = ambiguity_counts(amb, 6)
        assert words == 8          # one word per b-mask over 3 gadgets
        assert max_runs == 8       # the all-a word has 2^3 runs
        assert runs > words        # strictly ambiguous

    def test_ufa_profile(self, even_zeros_dfa):
        words, runs, max_runs = ambiguity_counts(even_zeros_dfa, 4)
        assert words == runs == 8
        assert max_runs == 1

    def test_empty(self):
        words, runs, max_runs = ambiguity_counts(NFA.empty_language("01"), 3)
        assert (words, runs, max_runs) == (0, 0, 0)
