"""Unit tests for the workload generators (repro.automata.random_gen)."""

from __future__ import annotations

import pytest

from repro.automata.nfa import word
from repro.automata.operations import words_of_length
from repro.automata.random_gen import (
    ambiguity_blowup,
    chain_of_unions,
    contains_pattern_nfa,
    divisibility_dfa,
    random_nfa,
    random_ufa,
    unary_counter,
)
from repro.automata.unambiguous import is_unambiguous
from repro.core.exact import count_words_exact


class TestRandomGenerators:
    def test_deterministic_given_seed(self):
        assert random_nfa(8, rng=123) == random_nfa(8, rng=123)
        assert random_ufa(8, rng=123) == random_ufa(8, rng=123)

    def test_different_seeds_differ(self):
        assert random_nfa(8, rng=1) != random_nfa(8, rng=2)

    def test_ensure_nonempty(self):
        nfa = random_nfa(6, rng=9, ensure_nonempty_length=8)
        assert len(words_of_length(nfa, 8)) > 0

    def test_ufa_is_unambiguous(self):
        for seed in range(6):
            assert is_unambiguous(random_ufa(6, rng=seed))

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            random_nfa(0)


class TestAmbiguityBlowup:
    def test_structure(self):
        nfa = ambiguity_blowup(4)
        n = 8
        all_a = word("0" * 8)
        assert nfa.accepts(all_a)
        assert nfa.count_accepting_runs(all_a) == 2**4

    def test_word_count(self):
        # Each gadget independently reads 'aa' or 'ba' → 2^depth words.
        for depth in (1, 2, 3):
            nfa = ambiguity_blowup(depth)
            assert count_words_exact(nfa, 2 * depth) == 2**depth

    def test_mixed_word_single_run(self):
        nfa = ambiguity_blowup(3)
        w = word("10" * 3)  # bypass at every gadget
        assert nfa.accepts(w)
        assert nfa.count_accepting_runs(w) == 1

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            ambiguity_blowup(0)


class TestStructuredFamilies:
    def test_unary_counter(self):
        nfa = unary_counter(3, [0])
        for n in range(10):
            expected = 1 if n % 3 == 0 else 0
            assert len(words_of_length(nfa, n)) == expected

    def test_unary_counter_multiple_residues(self):
        nfa = unary_counter(4, [1, 3])
        for n in range(9):
            assert len(words_of_length(nfa, n)) == (1 if n % 4 in (1, 3) else 0)

    def test_unary_counter_validation(self):
        with pytest.raises(ValueError):
            unary_counter(3, [3])

    def test_divisibility_dfa(self):
        nfa = divisibility_dfa(2, 3)
        # Binary multiples of 3 of length 4 (leading zeros allowed):
        # 0000, 0011, 0110, 1001, 1100, 1111 → values 0,3,6,9,12,15.
        assert len(words_of_length(nfa, 4)) == 6

    def test_divisibility_is_deterministic(self):
        assert divisibility_dfa(2, 5).is_deterministic()

    def test_contains_pattern(self):
        nfa = contains_pattern_nfa("11")
        # Length-3 binary words containing '11': 011,110,111 → 3.
        assert len(words_of_length(nfa, 3)) == 3
        # Ambiguous: '111' has two occurrences.
        assert nfa.count_accepting_runs(word("111")) == 2

    def test_chain_of_unions_counts(self):
        # Blocks 'a' | 'aa': words of length n from k blocks = compositions
        # of n into k parts from {1, 2}.
        nfa = chain_of_unions(3, ["a", "aa"])
        # length 4 with 3 blocks: compositions of 4 into 3 parts of 1/2 = C(3,1)=3
        # but identical words collapse: all words are a^4 — a single word!
        assert count_words_exact(nfa, 4) == 1
        assert nfa.count_accepting_runs(word("aaaa")) == 3

    def test_chain_of_unions_distinct_symbols(self):
        nfa = chain_of_unions(2, ["a", "bb"])
        # Words: aa (1+1), abb, bba (1+2, 2+1), bbbb (2+2).
        assert count_words_exact(nfa, 2) == 1
        assert count_words_exact(nfa, 3) == 2
        assert count_words_exact(nfa, 4) == 1
