"""Tests for DNF formulas and the SAT-DNF relation (Section 3 example)."""

from __future__ import annotations

import pytest

from repro.automata.operations import words_of_length
from repro.core.exact import count_words_exact
from repro.core.transducers import compile_to_nfa, outputs_brute_force
from repro.dnf.formulas import DNFFormula, DNFTerm, parse_dnf, random_dnf
from repro.dnf.relation import SatDnfRelation, dnf_to_nfa, dnf_transducer
from repro.errors import InvalidRelationInputError


class TestFormulas:
    def test_parse_basic(self):
        phi = parse_dnf("x0 & !x1 | x2")
        assert phi.num_variables == 3
        assert len(phi.terms) == 2
        assert phi.evaluate((1, 0, 0))
        assert phi.evaluate((0, 0, 1))
        assert not phi.evaluate((0, 0, 0))

    def test_parse_contradiction_marked(self):
        phi = parse_dnf("x0 & !x0")
        assert not phi.terms[0].satisfiable
        assert phi.count_models_brute() == 0

    def test_parse_rejects_garbage(self):
        with pytest.raises(InvalidRelationInputError):
            parse_dnf("y0")
        with pytest.raises(InvalidRelationInputError):
            parse_dnf("x0 | | x1")

    def test_term_model_count(self):
        term = DNFTerm.from_dict({0: 1, 2: 0})
        assert term.count_models(5) == 2**3

    def test_counting_methods_agree(self):
        for seed in range(5):
            phi = random_dnf(7, 4, 3, rng=seed)
            assert phi.count_models_brute() == phi.count_models_inclusion_exclusion()

    def test_evaluate_arity_checked(self):
        phi = parse_dnf("x0")
        with pytest.raises(InvalidRelationInputError):
            phi.evaluate((1, 0))

    def test_literal_out_of_range(self):
        with pytest.raises(InvalidRelationInputError):
            DNFFormula(num_variables=1, terms=(DNFTerm.from_dict({3: 1}),))


class TestDnfToNfa:
    def test_language_is_model_set(self):
        phi = parse_dnf("x0 & !x1 | x2", num_variables=3)
        nfa = dnf_to_nfa(phi)
        models = {tuple(str(b) for b in m) for m in phi.models_brute()}
        assert set(words_of_length(nfa, 3)) == models

    def test_counts_on_random(self):
        for seed in range(5):
            phi = random_dnf(7, 3, 2, rng=seed)
            assert count_words_exact(dnf_to_nfa(phi), 7) == phi.count_models_brute()

    def test_contradictory_term_contributes_nothing(self):
        phi = parse_dnf("x0 & !x0 | x1", num_variables=2)
        assert count_words_exact(dnf_to_nfa(phi), 2) == 2

    def test_tautology_zero_vars(self):
        phi = DNFFormula(num_variables=0, terms=(DNFTerm((), satisfiable=True),))
        nfa = dnf_to_nfa(phi)
        assert nfa.accepts(())

    def test_empty_formula(self):
        phi = DNFFormula(num_variables=3, terms=())
        assert count_words_exact(dnf_to_nfa(phi), 3) == 0


class TestDnfTransducer:
    def test_agrees_with_direct_compilation(self):
        for seed in range(4):
            phi = random_dnf(6, 3, 2, rng=seed)
            via_transducer = compile_to_nfa(dnf_transducer(), phi)
            direct = dnf_to_nfa(phi)
            assert set(words_of_length(via_transducer, 6)) == set(
                words_of_length(direct, 6)
            )

    def test_agrees_with_run_tree_oracle(self):
        phi = random_dnf(5, 2, 2, rng=7)
        outputs = outputs_brute_force(dnf_transducer(), phi)
        models = {tuple(str(b) for b in m) for m in phi.models_brute()}
        assert outputs == models


class TestSatDnfRelation:
    def test_check_and_decode(self):
        phi = parse_dnf("x0 & x1 | !x2", num_variables=3)
        relation = SatDnfRelation()
        for witness in relation.witnesses(phi):
            assert relation.check(phi, witness)
            assert phi.evaluate(witness)

    def test_transducer_route_matches(self):
        phi = random_dnf(6, 3, 2, rng=3)
        direct = SatDnfRelation().witness_count_exact(phi)
        via = SatDnfRelation(via_transducer=True).witness_count_exact(phi)
        assert direct == via == phi.count_models_brute()
