"""Unit + statistical tests for the #NFA FPRAS (Algorithm 5, Theorem 22)."""

from __future__ import annotations

import pytest

from repro.automata.nfa import NFA
from repro.automata.random_gen import (
    ambiguity_blowup,
    contains_pattern_nfa,
    random_nfa,
)
from repro.core.exact import count_words_exact
from repro.core.fpras import FprasParameters, FprasState, approx_count_nfa
from repro.papers.constants import PaperConstants

FAST = FprasParameters(sample_size=48)


class TestParameters:
    def test_default_k_scales(self):
        params = FprasParameters()
        assert params.resolve_k(10, 10, 0.5) >= params.min_sample_size
        assert params.resolve_k(100, 100, 0.01) == params.max_sample_size

    def test_explicit_k_wins(self):
        assert FprasParameters(sample_size=7).resolve_k(100, 100, 0.1) == 7

    def test_paper_faithful_matches_constants(self):
        paper = FprasParameters.paper_faithful()
        constants = PaperConstants()
        n, m, delta = 3, 2, 0.5
        assert paper.resolve_k(n, m, delta) == constants.sample_size(n, m, delta)

    def test_paper_k_is_astronomical(self):
        # (nm/δ)^64 for a toy instance exceeds the number of atoms in the
        # observable universe — the documented reason 'practical' exists.
        assert PaperConstants().sample_size(4, 4, 0.1) > 10**80

    def test_retry_budget_default(self):
        assert FprasParameters().resolve_retries() >= 64

    def test_delta_validation(self, even_zeros_dfa):
        with pytest.raises(ValueError):
            FprasState(even_zeros_dfa, 3, delta=0.0)
        with pytest.raises(ValueError):
            FprasState(even_zeros_dfa, 3, delta=1.5)

    def test_negative_length(self, even_zeros_dfa):
        with pytest.raises(ValueError):
            FprasState(even_zeros_dfa, -1)


class TestExhaustiveRegime:
    def test_small_n_is_exact(self, endswith_one_nfa):
        state = FprasState(endswith_one_nfa, 5, delta=0.3, rng=0, params=FAST)
        assert state.diagnostics.used_exhaustive
        assert state.is_exact()
        assert state.count_estimate == 2**5 - 1

    def test_empty_language(self):
        state = FprasState(NFA.empty_language("01"), 5, delta=0.3, rng=0, params=FAST)
        assert state.count_estimate == 0.0

    def test_zero_length(self, even_zeros_dfa):
        state = FprasState(even_zeros_dfa, 0, delta=0.3, rng=0, params=FAST)
        assert state.count_estimate == 1.0


class TestExactlyHandledRegime:
    def test_thin_language_exact_via_sketches(self):
        # A single-word language at any length: every vertex has |U| = 1,
        # so the whole computation stays exactly handled.
        nfa = NFA.single_word(tuple("01" * 8), alphabet="01").without_epsilon()
        state = FprasState(nfa, 16, delta=0.3, rng=0, params=FAST)
        assert state.count_estimate == 1.0
        assert state.is_exact()
        assert state.diagnostics.sketched == 0


class TestApproximation:
    @pytest.mark.parametrize("depth", [7, 8])
    def test_blowup_family(self, depth):
        nfa = ambiguity_blowup(depth)
        n = 2 * depth
        exact = count_words_exact(nfa, n)
        estimate = approx_count_nfa(nfa, n, delta=0.3, rng=11, params=FAST)
        assert abs(estimate - exact) <= 0.35 * exact

    def test_pattern_family(self):
        nfa = contains_pattern_nfa("101")
        exact = count_words_exact(nfa, 13)
        estimate = approx_count_nfa(nfa, 13, delta=0.3, rng=5, params=FAST)
        assert abs(estimate - exact) <= 0.35 * exact

    def test_success_probability(self):
        """The FPRAS contract: ≥ 3/4 of runs land within δ.

        We run a seed battery on one instance and require at least the
        contract fraction (with slack for the finite battery).
        """
        nfa = ambiguity_blowup(6)
        n = 12
        exact = count_words_exact(nfa, n)
        delta = 0.3
        hits = 0
        runs = 12
        for seed in range(runs):
            estimate = approx_count_nfa(nfa, n, delta=delta, rng=seed, params=FAST)
            if abs(estimate - exact) <= delta * exact:
                hits += 1
        assert hits / runs >= 0.75

    def test_deterministic_given_seed(self):
        nfa = contains_pattern_nfa("11")
        a = approx_count_nfa(nfa, 12, delta=0.3, rng=42, params=FAST)
        b = approx_count_nfa(nfa, 12, delta=0.3, rng=42, params=FAST)
        assert a == b

    def test_random_nfas_reasonable(self, rng):
        for seed in (1, 2):
            nfa = random_nfa(8, density=1.8, rng=seed, ensure_nonempty_length=10)
            exact = count_words_exact(nfa, 10)
            estimate = approx_count_nfa(nfa, 10, delta=0.3, rng=rng, params=FAST)
            assert abs(estimate - exact) <= 0.5 * exact  # generous: small k


class TestSampling:
    def test_witnesses_only(self):
        nfa = ambiguity_blowup(7)
        n = 14
        state = FprasState(nfa, n, delta=0.3, rng=3, params=FAST)
        stripped = nfa.without_epsilon()
        drawn = 0
        for _ in range(400):
            w = state.sample_witness()
            if w is not None:
                assert stripped.accepts(w)
                drawn += 1
        assert drawn > 0

    def test_exact_regime_sampling(self, endswith_one_nfa, rng):
        state = FprasState(endswith_one_nfa, 4, delta=0.3, rng=rng, params=FAST)
        support = set()
        for _ in range(100):
            w = state.sample_witness(rng)
            assert w is not None  # exact regime never rejects
            support.add(w)
        assert support <= {w for w in support if endswith_one_nfa.accepts(w)}


class TestDiagnostics:
    def test_counters_populated(self):
        nfa = ambiguity_blowup(7)
        state = FprasState(nfa, 14, delta=0.3, rng=0, params=FAST)
        d = state.diagnostics
        assert d.k == 48
        assert d.sketched > 0
        assert d.sample_draws >= d.sketched * d.k
        assert d.layers == 14
