"""Concurrency-safety analyzer tests: domains, guards, lock order.

Exercises the project-level machinery behind the four concurrency rules
on multi-module fixtures: symbol-table + call-graph construction
(:mod:`repro.analysis.project`), concurrency-domain inference
(:mod:`repro.analysis.domains`), the declared-ownership model
(:mod:`repro.analysis.guards`), and the ``check_project`` rules
themselves — including suppression semantics on cross-file findings.
"""

import ast
from pathlib import Path

from repro.analysis.domains import (
    EVENT_LOOP,
    EXECUTOR,
    MAIN,
    WORKER,
    infer_domains,
)
from repro.analysis.engine import SourceModule, run_lint
from repro.analysis.project import ProjectIndex
from repro.analysis.rules import (
    AwaitInCriticalSectionRule,
    GuardedByRule,
    LockOrderRule,
    TaskLeakRule,
)


def make_modules(files):
    """In-memory SourceModules from {rel_path: source} (no disk)."""

    return [
        SourceModule(Path(rel), rel, text, ast.parse(text), {})
        for rel, text in sorted(files.items())
    ]


def write_project(tmp_path, files):
    """Write {rel_path: source} under tmp_path; return the file paths."""

    paths = []
    for rel, text in sorted(files.items()):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        paths.append(path)
    return paths


def lint_project(tmp_path, files, rule):
    return run_lint(write_project(tmp_path, files), rules=[rule])


def messages(result):
    return [finding.message for finding in result.findings]


# ----------------------------------------------------------------------
# Domain inference
# ----------------------------------------------------------------------


class TestDomainInference:
    def test_async_pins_to_event_loop_and_executor_seed_propagates(self):
        index = ProjectIndex(
            make_modules(
                {
                    "server.py": (
                        "import asyncio\n"
                        "\n"
                        "class Server:\n"
                        "    async def pump(self):\n"
                        "        loop = asyncio.get_running_loop()\n"
                        "        await loop.run_in_executor(None, self.crunch)\n"
                        "\n"
                        "    def crunch(self):\n"
                        "        self.helper()\n"
                        "\n"
                        "    def helper(self):\n"
                        "        pass\n"
                    )
                }
            )
        )
        domains = infer_domains(index)
        assert domains["server.py::Server.pump"] == {EVENT_LOOP}
        assert EXECUTOR in domains["server.py::Server.crunch"]
        # Propagated along the call graph to the sync callee...
        assert EXECUTOR in domains["server.py::Server.helper"]
        # ...but an async function never inherits a caller's domain.
        assert domains["server.py::Server.pump"] == {EVENT_LOOP}

    def test_thread_process_and_main_seeds(self):
        index = ProjectIndex(
            make_modules(
                {
                    "boot.py": (
                        "import multiprocessing\n"
                        "import threading\n"
                        "\n"
                        "def worker_main():\n"
                        "    tick()\n"
                        "\n"
                        "def tick():\n"
                        "    pass\n"
                        "\n"
                        "def background():\n"
                        "    pass\n"
                        "\n"
                        "def serve():\n"
                        "    threading.Thread(target=background).start()\n"
                        "    multiprocessing.Process(target=worker_main).start()\n"
                        "\n"
                        "def main():\n"
                        "    serve()\n"
                        "\n"
                        "main()\n"
                    )
                }
            )
        )
        domains = infer_domains(index)
        assert WORKER in domains["boot.py::worker_main"]
        assert WORKER in domains["boot.py::tick"]  # propagated
        assert EXECUTOR in domains["boot.py::background"]
        assert MAIN in domains["boot.py::main"]
        assert MAIN in domains["boot.py::serve"]  # called from main

    def test_cross_module_propagation(self):
        index = ProjectIndex(
            make_modules(
                {
                    "a.py": (
                        "import asyncio\n"
                        "from b import shared_sink\n"
                        "\n"
                        "async def pump():\n"
                        "    loop = asyncio.get_running_loop()\n"
                        "    await loop.run_in_executor(None, entry)\n"
                        "\n"
                        "def entry():\n"
                        "    shared_sink()\n"
                    ),
                    "b.py": (
                        "def shared_sink():\n"
                        "    pass\n"
                    ),
                }
            )
        )
        domains = infer_domains(index)
        assert EXECUTOR in domains["a.py::entry"]
        assert EXECUTOR in domains["b.py::shared_sink"]


# ----------------------------------------------------------------------
# guarded-by: declared locks, held-at-entry, owned-by, undeclared state
# ----------------------------------------------------------------------


POOL_OK = (
    "import threading\n"
    "\n"
    "class Pool:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self.resident = 0  # guarded-by: _lock\n"
    "\n"
    "    def refill(self):\n"
    "        with self._lock:\n"
    "            self._locked_refill()\n"
    "\n"
    "    def _locked_refill(self):\n"
    "        self.resident += 1\n"
)

PROBE_BAD = (
    "import threading\n"
    "\n"
    "class Probe:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self.depth = 0  # guarded-by: _lock\n"
    "\n"
    "    def peek(self):\n"
    "        return self.depth\n"
)


class TestGuardedBy:
    def test_lexical_and_held_at_entry_clean(self, tmp_path):
        result = lint_project(tmp_path, {"pool.py": POOL_OK}, GuardedByRule())
        assert result.ok, messages(result)

    def test_unlocked_access_flagged_with_multi_module_noise(self, tmp_path):
        # The clean module must not mask the violation next door.
        result = lint_project(
            tmp_path,
            {"pool.py": POOL_OK, "probe.py": PROBE_BAD},
            GuardedByRule(),
        )
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert "Probe.depth" in finding.message
        assert "peek" in finding.message

    def test_owned_by_domain_violation(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "repro/service/owned.py": (
                    "import asyncio\n"
                    "\n"
                    "class LoopState:\n"
                    "    def __init__(self):\n"
                    "        self.ticks = 0  # owned-by: event-loop\n"
                    "\n"
                    "    async def tick(self):\n"
                    "        self.ticks += 1\n"
                    "\n"
                    "    async def serve(self):\n"
                    "        loop = asyncio.get_running_loop()\n"
                    "        await loop.run_in_executor(None, self.poke)\n"
                    "\n"
                    "    def poke(self):\n"
                    "        self.ticks += 1\n"
                )
            },
            GuardedByRule(),
        )
        assert len(result.findings) == 1
        assert "LoopState.ticks" in result.findings[0].message
        assert "poke" in result.findings[0].message

    def test_undeclared_shared_write_flagged_on_surface_only(self, tmp_path):
        hub = (
            "import asyncio\n"
            "\n"
            "class Hub:\n"
            "    def __init__(self):\n"
            "        self.counter = 0\n"
            "\n"
            "    async def serve(self):\n"
            "        loop = asyncio.get_running_loop()\n"
            "        self.counter += 1\n"
            "        await loop.run_in_executor(None, self.bump)\n"
            "\n"
            "    def bump(self):\n"
            "        self.counter += 1\n"
        )
        on_surface = lint_project(
            tmp_path, {"repro/service/shared.py": hub}, GuardedByRule()
        )
        assert len(on_surface.findings) == 1
        assert "Hub.counter" in on_surface.findings[0].message
        assert "declare" in on_surface.findings[0].message
        # The same shape off the declaration surface is advisory-free:
        # only the serving stack mandates declared disciplines.
        off_surface = lint_project(
            tmp_path, {"elsewhere/shared.py": hub}, GuardedByRule()
        )
        assert off_surface.ok, messages(off_surface)

    def test_constructor_exempt(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "init.py": (
                    "import threading\n"
                    "\n"
                    "class Warm:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self.slots = []  # guarded-by: _lock\n"
                    "        self.slots.append(0)  # no lock: pre-escape\n"
                )
            },
            GuardedByRule(),
        )
        assert result.ok, messages(result)


class TestSuppressionOnProjectFindings:
    def test_reasoned_suppression_silences_cross_file_rule(self, tmp_path):
        suppressed = PROBE_BAD.replace(
            "        return self.depth",
            "        return self.depth  # repro-lint: ignore[guarded-by]"
            " -- lock-free probe is re-checked by the caller",
        )
        result = lint_project(
            tmp_path, {"probe.py": suppressed}, GuardedByRule()
        )
        assert result.ok, messages(result)
        assert result.suppressed == 1

    def test_reasonless_suppression_still_fails(self, tmp_path):
        suppressed = PROBE_BAD.replace(
            "        return self.depth",
            "        return self.depth  # repro-lint: ignore[guarded-by]",
        )
        result = lint_project(
            tmp_path, {"probe.py": suppressed}, GuardedByRule()
        )
        assert not result.ok
        assert {f.rule for f in result.findings} == {"bad-suppression"}


# ----------------------------------------------------------------------
# await-in-critical-section
# ----------------------------------------------------------------------


class TestAwaitInCriticalSection:
    def test_sync_lock_flagged_async_lock_clean(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "locks.py": (
                    "import asyncio\n"
                    "import threading\n"
                    "\n"
                    "class Mixed:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self._alock = asyncio.Lock()\n"
                    "\n"
                    "    async def bad(self):\n"
                    "        with self._lock:\n"
                    "            await asyncio.sleep(0)\n"
                    "\n"
                    "    async def fine(self):\n"
                    "        async with self._alock:\n"
                    "            await asyncio.sleep(0)\n"
                )
            },
            AwaitInCriticalSectionRule(),
        )
        assert len(result.findings) == 1
        assert "_lock" in result.findings[0].message
        assert result.findings[0].line == 11


# ----------------------------------------------------------------------
# lock-order
# ----------------------------------------------------------------------


class TestLockOrder:
    def test_cross_module_cycle_flagged(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "a.py": (
                    "import threading\n"
                    "from b import grab_b\n"
                    "\n"
                    "a_lock = threading.Lock()\n"
                    "\n"
                    "def grab_a():\n"
                    "    with a_lock:\n"
                    "        pass\n"
                    "\n"
                    "def a_then_b():\n"
                    "    with a_lock:\n"
                    "        grab_b()\n"
                ),
                "b.py": (
                    "import threading\n"
                    "from a import grab_a\n"
                    "\n"
                    "b_lock = threading.Lock()\n"
                    "\n"
                    "def grab_b():\n"
                    "    with b_lock:\n"
                    "        pass\n"
                    "\n"
                    "def b_then_a():\n"
                    "    with b_lock:\n"
                    "        grab_a()\n"
                ),
            },
            LockOrderRule(),
        )
        assert len(result.findings) == 1
        assert "cycle" in result.findings[0].message
        assert "a_lock" in result.findings[0].message
        assert "b_lock" in result.findings[0].message

    def test_consistent_order_clean(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "ordered.py": (
                    "import threading\n"
                    "\n"
                    "outer_lock = threading.Lock()\n"
                    "inner_lock = threading.Lock()\n"
                    "\n"
                    "def both():\n"
                    "    with outer_lock:\n"
                    "        with inner_lock:\n"
                    "            pass\n"
                    "\n"
                    "def both_again():\n"
                    "    with outer_lock:\n"
                    "        with inner_lock:\n"
                    "            pass\n"
                )
            },
            LockOrderRule(),
        )
        assert result.ok, messages(result)

    def test_reacquisition_through_callee_flagged(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "box.py": (
                    "import threading\n"
                    "\n"
                    "class Box:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "\n"
                    "    def outer(self):\n"
                    "        with self._lock:\n"
                    "            self.inner()\n"
                    "\n"
                    "    def inner(self):\n"
                    "        with self._lock:\n"
                    "            pass\n"
                )
            },
            LockOrderRule(),
        )
        assert len(result.findings) == 1
        assert "re-acquired" in result.findings[0].message


# ----------------------------------------------------------------------
# task-leak
# ----------------------------------------------------------------------


class TestTaskLeak:
    def test_dropped_and_unused_handles_flagged(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "tasks.py": (
                    "import asyncio\n"
                    "\n"
                    "async def leaky():\n"
                    "    asyncio.create_task(work())\n"
                    "    t = asyncio.create_task(work())\n"
                    "    await asyncio.sleep(0)\n"
                )
            },
            TaskLeakRule(),
        )
        assert len(result.findings) == 2
        assert any("discarded" in m for m in messages(result))
        assert any("never used" in m for m in messages(result))

    def test_retained_chained_and_grouped_clean(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "tasks.py": (
                    "import asyncio\n"
                    "\n"
                    "async def fine():\n"
                    "    t = asyncio.create_task(work())\n"
                    "    await t\n"
                    "    asyncio.create_task(work()).add_done_callback(done)\n"
                    "    async with asyncio.TaskGroup() as tg:\n"
                    "        tg.create_task(work())\n"
                )
            },
            TaskLeakRule(),
        )
        assert result.ok, messages(result)
