"""Differential suite for the accelerated kernel backend and the mmap
snapshot tier (ISSUE 8).

The NumPy backend's contract is *bit-identity*: every count, sample,
spectrum and FPRAS estimate must equal the canonical pure-Python path's
output exactly — same values, same container packing, same RNG stream
consumption.  These tests run both backends side by side on the same
seeded inputs and compare; when NumPy is not installed they still run,
because ``resolve("numpy")`` then degrades to the pure path and equality
holds trivially (the CI matrix covers both legs).

The mmap tier's contract: a zero-copy restored kernel answers every
query identically to a full-deserialize restore, never mutates the
borrowed buffer (copy-on-extend), and survives store eviction of its
backing file on POSIX.
"""

from __future__ import annotations

import os
import random
from array import array

import pytest

from repro.automata.nfa import NFA
from repro.automata.random_gen import random_ufa
from repro.core import accel
from repro.core.fpras import FprasParameters, FprasState
from repro.core.kernel import CompiledDAG, compile_nfa
from repro.core.spectrum import SpectrumSolver
from repro.errors import UnknownBackendError
from repro.service.snapshot import (
    MAGIC,
    SNAPSHOT_VERSION,
    SnapshotError,
    kernel_from_bytes,
    kernel_from_mmap,
    kernel_to_bytes,
)
from repro.service.store import KernelStore
from repro.utils.rng import make_rng, substreams

LP64 = array("l").itemsize == 8


def ufa(states=40, n=30, seed=7):
    return random_ufa(states, rng=seed, completeness=0.9, ensure_nonempty_length=n)


def spill_nfa():
    """Complete 2-symbol all-accepting DFA: counts reach 2**n (spills)."""
    return NFA(
        states={"s"},
        alphabet={"a", "b"},
        transitions={("s", "a", "s"), ("s", "b", "s")},
        initial="s",
        finals={"s"},
    )


def both_backends(nfa, n, trimmed):
    pure = compile_nfa(nfa, n, trimmed=trimmed).set_kernel_backend("pure")
    fast = compile_nfa(nfa, n, trimmed=trimmed).set_kernel_backend("numpy")
    return pure, fast


def rows_equal(a, b):
    assert [list(r) for r in a] == [list(r) for r in b]
    # Same packing decision too: accel rows must be array('q') exactly
    # when the pure packer would pack, lists exactly when it spills.
    assert [type(r).__name__ for r in a] == [type(r).__name__ for r in b]


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------


def test_resolve_pure_and_unknown():
    assert accel.resolve("pure") is None
    with pytest.raises(UnknownBackendError):
        accel.resolve("cuda")


def test_resolve_env_default(monkeypatch):
    monkeypatch.delenv(accel.BACKEND_ENV, raising=False)
    assert accel.resolve(None) is None  # default is the pure path
    monkeypatch.setenv(accel.BACKEND_ENV, "pure")
    assert accel.resolve(None) is None
    monkeypatch.setenv(accel.BACKEND_ENV, "numpy")
    resolved = accel.resolve(None)
    if accel.numpy_available() and LP64:
        assert resolved is not None and resolved.name == "numpy"
    else:
        assert resolved is None
    monkeypatch.setenv(accel.BACKEND_ENV, "not-a-backend")
    with pytest.raises(UnknownBackendError):
        accel.resolve(None)


def test_resolve_falls_back_without_numpy(monkeypatch):
    # Simulate an interpreter with no numpy: the explicit "numpy" and
    # "auto" selections silently degrade to the pure path.
    monkeypatch.setattr(accel, "_np", None)
    monkeypatch.setattr(accel, "_np_checked", True)
    assert not accel.numpy_available()
    assert accel.resolve("numpy") is None
    assert accel.resolve("auto") is None
    kernel = compile_nfa(ufa(10, n=6), 6).set_kernel_backend("numpy")
    assert kernel.kernel_backend == "pure"
    assert kernel.total_runs == compile_nfa(ufa(10, n=6), 6).total_runs


def test_kernel_backend_property_and_env(monkeypatch):
    monkeypatch.delenv(accel.BACKEND_ENV, raising=False)
    kernel = compile_nfa(ufa(10, n=6), 6)
    assert kernel.kernel_backend == "pure"
    monkeypatch.setenv(accel.BACKEND_ENV, "numpy")
    kernel = compile_nfa(ufa(10, n=6), 6)
    expected = "numpy" if (accel.numpy_available() and LP64) else "pure"
    assert kernel.kernel_backend == expected


# ----------------------------------------------------------------------
# Differential: counts, sampling, spectrum, FPRAS
# ----------------------------------------------------------------------


@pytest.mark.parametrize("trimmed", [True, False])
def test_count_tables_bit_identical(trimmed):
    pure, fast = both_backends(ufa(), 30, trimmed)
    rows_equal(pure.forward_counts(), fast.forward_counts())
    rows_equal(pure.backward_counts(), fast.backward_counts())
    assert pure.total_runs == fast.total_runs
    if not trimmed:
        assert pure.spectrum_counts() == fast.spectrum_counts()


def test_count_tables_spill_identical():
    # Counts reach 2**70: rows spill to bignum lists; the accel path
    # must hand the whole table to the exact pure code and still match.
    pure, fast = both_backends(spill_nfa(), 70, False)
    assert fast.total_runs == 2**70
    rows_equal(pure.backward_counts(), fast.backward_counts())
    rows_equal(pure.forward_counts(), fast.forward_counts())


def test_sample_batch_byte_identical_shared_generator():
    pure, fast = both_backends(ufa(), 30, True)
    assert pure.sample_batch(500, random.Random(42)) == fast.sample_batch(
        500, random.Random(42)
    )
    # The draws consume the shared stream identically: the generators
    # end in the same state.
    g1, g2 = random.Random(7), random.Random(7)
    pure.sample_batch(50, g1)
    fast.sample_batch(50, g2)
    assert g1.getstate() == g2.getstate()


def test_sample_batch_byte_identical_substreams():
    pure, fast = both_backends(ufa(), 30, True)
    a = pure.sample_batch(64, substreams(make_rng(9), 64))
    b = fast.sample_batch(64, substreams(make_rng(9), 64))
    assert a == b


def test_sample_batch_spilled_rows_fall_back():
    pure, fast = both_backends(spill_nfa(), 70, True)
    assert pure.sample_batch(20, random.Random(3)) == fast.sample_batch(
        20, random.Random(3)
    )


def test_step_indices_and_predecessor_groups_identical():
    pure, fast = both_backends(ufa(), 30, False)
    for t in (0, 5, 29):
        idx = list(range(pure.layer_size(t)))
        for symbol in pure.symbols:
            assert pure.step_indices(t, idx, symbol) == fast.step_indices(
                t, idx, symbol
            )
        # Tiny index sets exercise the small-workload pure fallback.
        for symbol in pure.symbols:
            assert pure.step_indices(t, idx[:1], symbol) == fast.step_indices(
                t, idx[:1], symbol
            )
    for t in (1, 6, 30):
        idx = list(range(pure.layer_size(t)))
        assert pure.predecessor_groups(t, idx) == fast.predecessor_groups(t, idx)
        assert pure.predecessor_groups(t, idx[:1]) == fast.predecessor_groups(
            t, idx[:1]
        )
    # Iterables (not just lists) must work on the accel path too.
    assert pure.step_indices(5, iter(range(3)), pure.symbols[0]) == fast.step_indices(
        5, iter(range(3)), fast.symbols[0]
    )


def test_spectrum_solver_backend_identical():
    nfa = ufa(25, n=20, seed=11)
    pure = SpectrumSolver(nfa, 20, kernel_backend="pure")
    fast = SpectrumSolver(nfa, 20, kernel_backend="numpy")
    assert pure.count() == fast.count()
    assert pure._counts == fast._counts
    pure.extend(30)
    fast.extend(30)
    assert pure._counts == fast._counts
    assert pure.count() == fast.count()


def test_extend_to_forward_rows_identical():
    nfa = ufa()
    pure, fast = both_backends(nfa, 10, False)
    pure.forward_counts()
    fast.forward_counts()
    pure.extend_to(25)
    fast.extend_to(25)
    rows_equal(pure.forward_counts(), fast.forward_counts())
    assert pure.spectrum_counts() == fast.spectrum_counts()


def test_fpras_estimates_bit_identical():
    nfa = ufa(20, n=12, seed=5)
    params = FprasParameters(sample_size=32)
    estimates = []
    for backend in ("pure", "numpy"):
        kernel = compile_nfa(nfa, 12, trimmed=False).set_kernel_backend(backend)
        state = FprasState(nfa, 12, delta=0.3, rng=123, params=params, kernel=kernel)
        estimates.append(state.count_estimate)
    assert estimates[0] == estimates[1]


def test_witness_set_backend_selection_and_describe():
    import repro

    nfa = ufa(15, n=10, seed=2)
    ws_pure = repro.WitnessSet(nfa, 10, kernel_backend="pure")
    ws_fast = repro.WitnessSet(nfa, 10, kernel_backend="numpy")
    expected = "numpy" if (accel.numpy_available() and LP64) else "pure"
    assert ws_pure.describe()["kernel_backend"] == "pure"
    assert ws_fast.describe()["kernel_backend"] == expected
    assert ws_fast.kernel.kernel_backend == expected
    assert ws_pure.count_exact() == ws_fast.count_exact()
    assert ws_pure.sample(rng=4) == ws_fast.sample(rng=4)
    with pytest.raises(UnknownBackendError):
        repro.WitnessSet(nfa, 10, kernel_backend="tpu")


# ----------------------------------------------------------------------
# Snapshot v2 + mmap tier
# ----------------------------------------------------------------------


def built_kernel(n=20, trimmed=False):
    nfa = ufa(30, n=n, seed=3)
    kernel = compile_nfa(nfa, n, trimmed=trimmed)
    kernel.forward_counts()
    kernel.backward_counts()
    return nfa, kernel


def test_snapshot_v2_payload_is_aligned():
    _, kernel = built_kernel()
    data = kernel_to_bytes(kernel)
    assert data[: len(MAGIC)] == MAGIC
    import struct

    (header_len,) = struct.unpack_from("<I", data, len(MAGIC))
    payload_start = len(MAGIC) + 4 + header_len
    payload_start += (-payload_start) % 8
    assert payload_start % 8 == 0
    assert SNAPSHOT_VERSION == 2


def test_snapshot_v2_roundtrip_and_v1_still_loads():
    _, kernel = built_kernel()
    for version in (1, 2):
        restored = kernel_from_bytes(kernel_to_bytes(kernel, version=version))
        assert restored._borrow_owner is None
        assert [list(r) for r in restored.forward_counts()] == [
            list(r) for r in kernel.forward_counts()
        ]
        assert restored.total_runs == kernel.total_runs
    with pytest.raises(SnapshotError):
        kernel_to_bytes(kernel, version=3)


@pytest.mark.skipif(not LP64, reason="borrow mode requires LP64")
def test_from_mmap_borrows_and_answers_identically(tmp_path):
    nfa, kernel = built_kernel()
    path = tmp_path / "kernel.kern"
    path.write_bytes(kernel_to_bytes(kernel))
    mapped = CompiledDAG.from_mmap(path)
    assert mapped._borrow_owner is not None
    assert isinstance(mapped._edge_start[0], memoryview)
    assert isinstance(mapped.forward_counts()[0], memoryview)
    rows_ok = [list(r) for r in mapped.forward_counts()] == [
        list(r) for r in kernel.forward_counts()
    ]
    assert rows_ok
    assert mapped.total_runs == kernel.total_runs
    assert mapped.sample_batch(30, random.Random(5)) == kernel.sample_batch(
        30, random.Random(5)
    )
    assert mapped.spectrum_counts() == kernel.spectrum_counts()


@pytest.mark.skipif(not LP64, reason="borrow mode requires LP64")
def test_mmap_extend_copies_instead_of_mutating_borrowed_buffers(tmp_path):
    # Satellite regression: extend_to on an mmap-backed kernel must
    # copy-on-extend, never write through the borrowed buffers.
    nfa, kernel = built_kernel()
    path = tmp_path / "kernel.kern"
    snapshot = kernel_to_bytes(kernel)
    path.write_bytes(snapshot)
    mapped = CompiledDAG.from_mmap(
        path, source_resolver=lambda: nfa.without_epsilon()
    )
    mapped.forward_counts()
    mapped.extend_to(26)
    assert mapped._borrow_owner is None  # ownership was taken
    assert mapped.n == 26
    reference = compile_nfa(nfa, 26, trimmed=False)
    assert mapped.spectrum_counts() == reference.spectrum_counts()
    # The snapshot bytes on disk are untouched.
    assert path.read_bytes() == snapshot


def test_mmap_v1_snapshot_degrades_to_copy(tmp_path):
    _, kernel = built_kernel()
    path = tmp_path / "legacy.kern"
    path.write_bytes(kernel_to_bytes(kernel, version=1))
    restored = kernel_from_mmap(path)
    assert restored._borrow_owner is None  # copied; the mapping is closed
    assert restored.total_runs == kernel.total_runs


def test_mmap_corrupt_and_empty_files_raise(tmp_path):
    empty = tmp_path / "empty.kern"
    empty.write_bytes(b"")
    with pytest.raises(SnapshotError):
        kernel_from_mmap(empty)
    garbage = tmp_path / "garbage.kern"
    garbage.write_bytes(b"not a snapshot at all")
    with pytest.raises(SnapshotError):
        kernel_from_mmap(garbage)


def test_store_mmap_mode_hits_and_quarantines(tmp_path):
    from repro.service.fingerprint import fingerprint_source

    nfa, kernel = built_kernel()
    fp = fingerprint_source(nfa)
    store = KernelStore(tmp_path, mmap=True)
    assert store.get(fp, kernel.n, False) is None  # miss
    store.put(fp, kernel.n, False, kernel)
    restored = store.get(fp, kernel.n, False)
    assert restored is not None
    assert restored.fingerprint == fp
    assert restored.total_runs == kernel.total_runs
    if LP64:
        assert restored._borrow_owner is not None
        assert store.stats.extra.get("mmap_hits", 0) == 1
    # Corrupt entries are quarantined exactly like the copying path.
    path = store.path_for(fp, kernel.n, False)
    path.write_bytes(b"RPROKRN1garbage")
    assert store.get(fp, kernel.n, False) is None
    assert store.stats.corrupt == 1
    assert not path.exists()


@pytest.mark.skipif(os.name != "posix", reason="unlink-under-mmap is POSIX")
def test_store_eviction_under_live_mmap(tmp_path):
    # A kernel handed out as an mmap view keeps working after the store
    # evicts (unlinks) its backing snapshot — the page cache holds the
    # mapping alive until the last reference drops.
    from repro.service.fingerprint import fingerprint_source

    nfa, kernel = built_kernel()
    fp = fingerprint_source(nfa)
    store = KernelStore(tmp_path, max_bytes=1, mmap=True)  # evict everything
    store.put(fp, kernel.n, False, kernel)
    live = store.get(fp, kernel.n, False)
    if live is None:
        # put() already evicted past the 1-byte budget before any get.
        store.max_bytes = 10**9
        store.put(fp, kernel.n, False, kernel)
        live = store.get(fp, kernel.n, False)
        store.max_bytes = 1
    assert live is not None
    store._evict_over_budget()
    assert store.entries() == []  # the file is gone...
    assert live.total_runs == kernel.total_runs  # ...the kernel is not
    assert live.sample_batch(10, random.Random(1)) == kernel.sample_batch(
        10, random.Random(1)
    )


@pytest.mark.skipif(not LP64, reason="borrow mode requires LP64")
def test_mmap_kernel_reserializes_identically(tmp_path):
    # A borrowed kernel can be snapshotted again: memoryview rows are
    # packed sections, same as the arrays they view.
    _, kernel = built_kernel()
    data = kernel_to_bytes(kernel)
    path = tmp_path / "kernel.kern"
    path.write_bytes(data)
    mapped = kernel_from_mmap(path)
    assert kernel_to_bytes(mapped) == data
