"""Unit tests for the §5.2 self-reduction (ℓ, σ, ψ) and its eight conditions."""

from __future__ import annotations

import pytest

from repro.automata.nfa import NFA, word
from repro.automata.operations import words_of_length
from repro.automata.random_gen import random_nfa, random_ufa
from repro.automata.unambiguous import is_unambiguous
from repro.core.selfreduce import (
    SelfReduction,
    ell,
    empty_word_is_witness,
    psi,
    psi_paper_merge,
    sigma,
)


class TestScalars:
    def test_ell_is_k(self, even_zeros_dfa):
        assert ell(even_zeros_dfa, 7) == 7

    def test_ell_rejects_negative(self, even_zeros_dfa):
        with pytest.raises(ValueError):
            ell(even_zeros_dfa, -1)

    def test_sigma(self, even_zeros_dfa):
        assert sigma(even_zeros_dfa, 0) == 0
        assert sigma(even_zeros_dfa, 3) == 1

    def test_condition4_sigma_positive_iff_ell_positive(self, even_zeros_dfa):
        for k in range(4):
            assert (ell(even_zeros_dfa, k) > 0) == (sigma(even_zeros_dfa, k) > 0)

    def test_empty_word_witness(self, even_zeros_dfa):
        assert empty_word_is_witness(even_zeros_dfa)
        flipped = NFA(
            even_zeros_dfa.states,
            even_zeros_dfa.alphabet,
            even_zeros_dfa.transitions,
            "even",
            ["odd"],
        )
        assert not empty_word_is_witness(flipped)


class TestPsi:
    def test_residual_language(self, even_zeros_dfa):
        """Condition (8): witnesses of ψ(x, w) = w-suffixes of witnesses of x."""
        reduced, k = psi(even_zeros_dfa, 4, "0")
        assert k == 3
        expected = sorted(w[1:] for w in words_of_length(even_zeros_dfa, 4) if w[0] == "0")
        assert sorted(words_of_length(reduced, 3)) == expected

    def test_residual_language_ambiguous(self, endswith_one_nfa):
        for symbol in ("0", "1"):
            reduced, k = psi(endswith_one_nfa, 3, symbol)
            expected = sorted(
                w[1:] for w in words_of_length(endswith_one_nfa, 3) if w[0] == symbol
            )
            assert sorted(words_of_length(reduced, k)) == expected

    def test_size_stays_polynomial(self, rng):
        """Our corrected ψ adds one state and ≤ Σ outdeg(Q_w) transitions —
        the polynomial-boundedness Section 5.3.3's sampler relies on."""
        for _ in range(10):
            nfa = random_nfa(6, density=1.5, rng=rng).without_epsilon()
            for symbol in ("0", "1"):
                reduced, _ = psi(nfa, 5, symbol)
                assert reduced.num_states <= nfa.num_states + 1
                assert reduced.num_transitions <= 2 * nfa.num_transitions

    def test_paper_merge_satisfies_condition5(self, rng):
        """The paper's merge DOES satisfy the strict size condition (5)."""
        for _ in range(10):
            nfa = random_nfa(6, density=1.5, rng=rng).without_epsilon()
            for symbol in ("0", "1"):
                reduced, _ = psi_paper_merge(nfa, 5, symbol)
                assert reduced.num_states <= nfa.num_states
                assert reduced.num_transitions <= nfa.num_transitions

    def test_paper_merge_counterexample(self):
        """Regression: the literal §5.2 merge over-approximates the residual.

        N: q0 -a-> p1, q0 -a-> p2 (Q_a = {p1, p2}),
           p1 -d-> x, x -c-> p2, p1 -b-> z (final via b only from p1).
        Residual of 'a' at length 3 contains d·c·b?  In N, 'a d c b' would
        need p2 -b-> z, which does not exist → NOT a witness.  The merge
        construction accepts it anyway (enter q0' as p2, leave as p1).
        """
        nfa = NFA(
            ["q0", "p1", "p2", "x", "z"],
            ["a", "b", "c", "d"],
            [
                ("q0", "a", "p1"),
                ("q0", "a", "p2"),
                ("p1", "d", "x"),
                ("x", "c", "p2"),
                ("p1", "b", "z"),
            ],
            "q0",
            ["z"],
        )
        ghost = word("dcb")
        # Ground truth: 'a'+ghost is not accepted by N.
        assert not nfa.accepts(("a",) + ghost)
        merged, _ = psi_paper_merge(nfa, 4, "a")
        corrected, _ = psi(nfa, 4, "a")
        assert merged.accepts(ghost)          # the paper construction's flaw
        assert not corrected.accepts(ghost)   # our ψ is exact

    def test_paper_merge_correct_for_deterministic_step(self, rng):
        """With |Q_w| ≤ 1 (e.g. DFAs) the paper merge IS the residual."""
        for _ in range(8):
            ufa = random_ufa(6, rng=rng)
            for symbol in ("0", "1"):
                merged, k = psi_paper_merge(ufa, 4, symbol)
                expected = sorted(
                    w[1:] for w in words_of_length(ufa, 4) if w[0] == symbol
                )
                assert sorted(words_of_length(merged, k)) == expected

    def test_condition6_length_decreases(self, even_zeros_dfa):
        _, k = psi(even_zeros_dfa, 5, "1")
        assert k == 4

    def test_rejects_k_zero(self, even_zeros_dfa):
        with pytest.raises(ValueError):
            psi(even_zeros_dfa, 0, "0")

    def test_rejects_foreign_symbol(self, even_zeros_dfa):
        with pytest.raises(ValueError):
            psi(even_zeros_dfa, 3, "x")

    def test_empty_residual(self):
        nfa = NFA.single_word(word("ab"), alphabet="ab").without_epsilon()
        reduced, k = psi(nfa, 2, "b")  # no witness starts with 'b'
        assert words_of_length(reduced, k) == []

    def test_ufa_preserved(self, rng):
        """ψ maps unambiguous automata to unambiguous automata (end of §5.2)."""
        for _ in range(10):
            ufa = random_ufa(6, rng=rng)
            for symbol in ("0", "1"):
                reduced, _ = psi(ufa, 5, symbol)
                assert is_unambiguous(reduced)

    def test_iterated_descent(self, even_zeros_dfa):
        """Descending along a full witness leaves exactly the empty word."""
        witness = word("0011")
        chain = SelfReduction(even_zeros_dfa, 4).descend(witness)
        assert chain.k == 0
        assert empty_word_is_witness(chain.nfa)

    def test_iterated_descent_nonwitness(self, even_zeros_dfa):
        chain = SelfReduction(even_zeros_dfa, 4).descend(word("0001"))
        assert chain.k == 0
        assert not empty_word_is_witness(chain.nfa)

    def test_multi_final_generalization(self):
        """ψ handles several final states (our extension of the paper's
        unique-final construction) without losing witnesses."""
        nfa = NFA(
            ["s", "f1", "f2"],
            ["0", "1"],
            [("s", "0", "f1"), ("s", "1", "f2"), ("f1", "0", "f2")],
            "s",
            ["f1", "f2"],
        )
        reduced, k = psi(nfa, 2, "0")
        expected = sorted(w[1:] for w in words_of_length(nfa, 2) if w[0] == "0")
        assert sorted(words_of_length(reduced, k)) == expected

    def test_final_inside_qw_repaired(self):
        """When a final state is merged into q0', q0' must become final."""
        nfa = NFA(
            ["s", "f"],
            ["a"],
            [("s", "a", "f"), ("f", "a", "f")],
            "s",
            ["f"],
        )
        reduced, k = psi(nfa, 3, "a")
        assert sorted(words_of_length(reduced, 2)) == [word("aa")]


class TestSelfReductionBundle:
    def test_structural_size(self, even_zeros_dfa):
        bundle = SelfReduction(even_zeros_dfa, 3)
        assert bundle.structural_size() == (2, 4)

    def test_length_and_strip(self, even_zeros_dfa):
        bundle = SelfReduction(even_zeros_dfa, 3)
        assert bundle.length() == 3
        assert bundle.strip_count() == 1
        assert bundle.step("0").length() == 2
