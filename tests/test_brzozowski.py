"""Tests for Brzozowski derivatives: the third regex semantics."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.brzozowski import (
    brzozowski_dfa,
    derivative,
    matches,
    nullable,
)
from repro.automata.dfa import languages_equal
from repro.automata.regex import Empty, compile_regex, match_brute_force, parse
from repro.automata.unambiguous import is_unambiguous

ALPHABET = frozenset("ab")


class TestNullable:
    @pytest.mark.parametrize(
        "pattern,expected",
        [("a*", True), ("a", False), ("a?", True), ("a|", True), ("ab", False),
         ("(ab)*", True), ("a+", False), ("a{0,2}", True), ("a{1,2}", False)],
    )
    def test_cases(self, pattern, expected):
        assert nullable(parse(pattern)) == expected


class TestDerivative:
    def test_literal(self):
        assert nullable(derivative(parse("a"), "a", ALPHABET))
        assert isinstance(derivative(parse("a"), "b", ALPHABET), Empty)

    def test_concat_with_nullable_head(self):
        # ∂_b(a*b) must include ε (via the nullable a* head).
        node = derivative(parse("a*b"), "b", ALPHABET)
        assert nullable(node)

    def test_star_unfolds(self):
        node = derivative(parse("(ab)*"), "a", ALPHABET)
        assert matches(node, tuple("b"), ALPHABET)
        assert matches(node, tuple("bab"), ALPHABET)

    @pytest.mark.parametrize(
        "pattern", ["a", "ab|ba", "(a|b)*abb", "a*b*", "(a|ab)(b|ba)", "a{1,3}b?"]
    )
    def test_matching_agrees_with_brute_force(self, pattern):
        ast = parse(pattern)
        for n in range(5):
            for w in itertools.product("ab", repeat=n):
                assert matches(ast, w, ALPHABET) == match_brute_force(ast, w, ALPHABET), (
                    pattern,
                    w,
                )


@st.composite
def patterns(draw, depth: int = 3):
    if depth == 0:
        return draw(st.sampled_from(["a", "b", "[ab]"]))
    left = draw(patterns(depth=depth - 1))
    right = draw(patterns(depth=depth - 1))
    shape = draw(st.sampled_from(["cat", "alt", "star", "opt"]))
    if shape == "cat":
        return f"{left}{right}"
    if shape == "alt":
        return f"({left}|{right})"
    if shape == "star":
        return f"({left})*"
    return f"({left})?"


class TestThreeWayAgreement:
    @given(patterns(), st.lists(st.sampled_from("ab"), max_size=5).map(tuple))
    @settings(max_examples=80, deadline=None)
    def test_derivatives_vs_glushkov(self, pattern, w):
        ast = parse(pattern)
        nfa = compile_regex(pattern, alphabet="ab")
        assert matches(ast, w, ALPHABET) == nfa.accepts(w)


class TestBrzozowskiDfa:
    @pytest.mark.parametrize("pattern", ["(a|b)*abb", "a*b*", "(ab|ba)+", "a{2,4}"])
    def test_language_equals_glushkov(self, pattern):
        dfa_nfa = brzozowski_dfa(parse(pattern), "ab")
        glushkov_nfa = compile_regex(pattern, alphabet="ab")
        assert languages_equal(dfa_nfa, glushkov_nfa)

    def test_result_is_deterministic_and_unambiguous(self):
        automaton = brzozowski_dfa(parse("(a|b)*a(a|b)"), "ab")
        assert automaton.is_deterministic()
        assert is_unambiguous(automaton)

    def test_small_state_count(self):
        # (a|b)*abb has a 4-state minimal DFA; derivatives get close.
        automaton = brzozowski_dfa(parse("(a|b)*abb"), "ab")
        assert automaton.num_states <= 8

    def test_exact_counting_route(self):
        """Derivative DFA feeds the RelationUL exact counter."""
        from repro.core.exact import count_accepting_runs_of_length

        automaton = brzozowski_dfa(parse("(a|b)*a(a|b)*"), "ab")
        # Words containing an 'a': 2^n - 1.
        for n in range(1, 7):
            assert count_accepting_runs_of_length(automaton, n) == 2**n - 1
