"""Tests for OBDDs and nOBDDs (Corollaries 9–10)."""

from __future__ import annotations

import pytest

from repro.automata.unambiguous import is_unambiguous
from repro.bdd.builders import (
    conj,
    disj,
    neg,
    obdd_from_formula,
    random_nobdd,
    var,
)
from repro.bdd.nobdd import DecisionNode, EvalNobddRelation, GuessNode, NOBDD
from repro.bdd.obdd import (
    OBDD,
    EvalObddRelation,
    OBDDNode,
    TERMINAL_FALSE,
    TERMINAL_TRUE,
)
from repro.core.classes import RelationULSolver
from repro.core.exact import count_words_exact
from repro.errors import InvalidAutomatonError


def xor_obdd() -> OBDD:
    """x0 ⊕ x1 as an explicit OBDD."""
    return OBDD(
        nodes={
            "r": OBDDNode("x0", "lo", "hi"),
            "lo": OBDDNode("x1", TERMINAL_FALSE, TERMINAL_TRUE),
            "hi": OBDDNode("x1", TERMINAL_TRUE, TERMINAL_FALSE),
        },
        root="r",
        order=["x0", "x1"],
    )


class TestOBDD:
    def test_evaluate(self):
        d = xor_obdd()
        assert d.evaluate({"x0": 0, "x1": 1}) == 1
        assert d.evaluate({"x0": 1, "x1": 1}) == 0

    def test_order_violation_rejected(self):
        with pytest.raises(InvalidAutomatonError):
            OBDD(
                nodes={
                    "r": OBDDNode("x1", "child", TERMINAL_TRUE),
                    "child": OBDDNode("x0", TERMINAL_FALSE, TERMINAL_TRUE),
                },
                root="r",
                order=["x0", "x1"],
            )

    def test_dangling_child_rejected(self):
        with pytest.raises(InvalidAutomatonError):
            OBDD(nodes={"r": OBDDNode("x0", "ghost", TERMINAL_TRUE)}, root="r", order=["x0"])

    def test_constant_function(self):
        d = OBDD(nodes={}, root=TERMINAL_TRUE, order=["x0", "x1"])
        assert d.evaluate({"x0": 0, "x1": 1}) == 1
        nfa = d.to_nfa()
        assert count_words_exact(nfa, 2) == 4

    def test_to_nfa_counts(self):
        d = xor_obdd()
        assert count_words_exact(d.to_nfa(), 2) == 2

    def test_to_nfa_unambiguous(self):
        assert is_unambiguous(xor_obdd().to_nfa())

    def test_skipped_variables_free(self):
        # f = x0 over order [x0, x1, x2]: 4 models.
        d = OBDD(
            nodes={"r": OBDDNode("x0", TERMINAL_FALSE, TERMINAL_TRUE)},
            root="r",
            order=["x0", "x1", "x2"],
        )
        assert count_words_exact(d.to_nfa(), 3) == 4

    def test_relation_suite(self, rng):
        d = xor_obdd()
        relation = EvalObddRelation()
        compiled = relation.compile(d)
        solver = RelationULSolver(compiled.nfa, compiled.length)
        assert solver.count() == 2
        models = [relation.decode_witness(d, w) for w in solver.enumerate()]
        for model in models:
            assert d.evaluate(model) == 1
        sampled = relation.decode_witness(d, solver.sample(rng))
        assert d.evaluate(sampled) == 1


class TestObddFromFormula:
    @pytest.mark.parametrize(
        "formula,order,expected_models",
        [
            (conj(var("a"), var("b")), ["a", "b"], 1),
            (disj(var("a"), var("b")), ["a", "b"], 3),
            (neg(var("a")), ["a"], 1),
            (disj(conj(var("a"), var("b")), conj(neg(var("a")), var("c"))), ["a", "b", "c"], 4),
        ],
    )
    def test_model_counts(self, formula, order, expected_models):
        d = obdd_from_formula(formula, order)
        assert len(d.satisfying_assignments_brute()) == expected_models
        assert count_words_exact(d.to_nfa(), len(order)) == expected_models

    def test_agreement_with_formula(self):
        formula = disj(conj(var("a"), neg(var("b"))), var("c"))
        order = ["a", "b", "c"]
        d = obdd_from_formula(formula, order)
        for mask in range(8):
            assignment = {v: (mask >> i) & 1 for i, v in enumerate(order)}
            assert d.evaluate(assignment) == formula.evaluate(assignment)

    def test_missing_variable_rejected(self):
        with pytest.raises(ValueError):
            obdd_from_formula(var("z"), ["a"])

    def test_reduction_shares_nodes(self):
        # (a ∧ c) ∨ (b ∧ c): the 'c' cofactor is shared.
        formula = disj(conj(var("a"), var("c")), conj(var("b"), var("c")))
        d = obdd_from_formula(formula, ["a", "b", "c"])
        assert len(d.nodes) <= 4


class TestNOBDD:
    def test_guess_union_semantics(self):
        # Branch 1: x0 ∧ x1; branch 2: ¬x0 ∧ x1 → union is x1.
        nb = NOBDD(
            nodes={
                "root": GuessNode(("b1", "b2")),
                "b1": DecisionNode("x0", None, "c1"),
                "c1": DecisionNode("x1", None, TERMINAL_TRUE),
                "b2": DecisionNode("x0", "c2", None),
                "c2": DecisionNode("x1", None, TERMINAL_TRUE),
            },
            root="root",
            order=["x0", "x1"],
        )
        assert nb.evaluate({"x0": 0, "x1": 1}) == 1
        assert nb.evaluate({"x0": 1, "x1": 1}) == 1
        assert nb.evaluate({"x0": 1, "x1": 0}) == 0
        assert count_words_exact(nb.to_nfa(), 2) == 2

    def test_overlapping_branches_ambiguous_but_correct(self):
        # Both branches accept x0=1,x1=1: two runs, one model.
        nb = NOBDD(
            nodes={
                "root": GuessNode(("b1", "b2")),
                "b1": DecisionNode("x0", None, "c1"),
                "c1": DecisionNode("x1", None, TERMINAL_TRUE),
                "b2": DecisionNode("x0", None, "c2"),
                "c2": DecisionNode("x1", None, TERMINAL_TRUE),
            },
            root="root",
            order=["x0", "x1"],
        )
        nfa = nb.to_nfa()
        assert count_words_exact(nfa, 2) == 1
        assert not is_unambiguous(nfa)

    def test_random_nobdd_consistent_and_counted(self):
        for seed in range(4):
            nb = random_nobdd(5, branches=3, rng=seed)
            assert nb.check_consistency()
            brute = sum(
                nb.evaluate({f"x{i}": (mask >> i) & 1 for i in range(5)})
                for mask in range(32)
            )
            assert count_words_exact(nb.to_nfa(), 5) == brute

    def test_relation_decode(self):
        from repro.automata.operations import words_of_length

        nb = random_nobdd(4, rng=2)
        relation = EvalNobddRelation()
        compiled = relation.compile(nb)
        for w in words_of_length(compiled.nfa, 4):
            model = relation.decode_witness(nb, w)
            assert nb.evaluate(model) == 1

    def test_empty_guess_rejected(self):
        with pytest.raises(InvalidAutomatonError):
            NOBDD(nodes={"root": GuessNode(())}, root="root", order=["x0"])
