"""Tests for the relation framework, reductions (Prop. 11) and class facades."""

from __future__ import annotations

import pytest

from repro.automata.nfa import NFA, word
from repro.automata.operations import words_of_length
from repro.core.classes import (
    RelationNL,
    RelationNLSolver,
    RelationUL,
    RelationULSolver,
    SpanLFunction,
)
from repro.core.fpras import FprasParameters
from repro.core.reductions import (
    MemNfaRelation,
    MemUfaRelation,
    completeness_reduction,
)
from repro.core.relations import PaddedWitness
from repro.dnf.formulas import random_dnf
from repro.dnf.relation import SatDnfRelation, dnf_transducer
from repro.errors import AmbiguityError, EmptyWitnessSetError

FAST = FprasParameters(sample_size=48)


class TestMemRelations:
    def test_mem_nfa_identity(self, endswith_one_nfa):
        relation = MemNfaRelation()
        compiled = relation.compile((endswith_one_nfa, 4))
        assert compiled.length == 4
        assert sorted(relation.witnesses((endswith_one_nfa, 4))) == words_of_length(
            endswith_one_nfa, 4
        )

    def test_mem_ufa_rejects_ambiguous(self, endswith_one_nfa):
        with pytest.raises(AmbiguityError):
            MemUfaRelation().compile((endswith_one_nfa, 4))

    def test_witness_count(self, even_zeros_dfa):
        assert MemNfaRelation().witness_count_exact((even_zeros_dfa, 5)) == 16


class TestCompletenessReduction:
    def test_enumeration_transfers(self):
        phi = random_dnf(6, 3, 2, rng=4)
        relation = SatDnfRelation()
        reduction = completeness_reduction(relation)
        via_reduction = sorted(reduction.enumerate(phi))
        direct = sorted(relation.compile(phi).nfa.accepts(w) for w in via_reduction)
        assert all(direct)
        assert len(via_reduction) == phi.count_models_brute()

    def test_counting_transfers(self):
        phi = random_dnf(6, 3, 2, rng=4)
        reduction = completeness_reduction(SatDnfRelation())
        assert reduction.count_exact(phi) == phi.count_models_brute()

    def test_approx_counting_transfers(self):
        phi = random_dnf(7, 3, 2, rng=4)
        reduction = completeness_reduction(SatDnfRelation())
        exact = phi.count_models_brute()
        estimate = reduction.count_approx(phi, delta=0.3, rng=0)
        assert abs(estimate - exact) <= 0.4 * exact

    def test_sampling_transfers(self):
        phi = random_dnf(6, 3, 2, rng=4)
        reduction = completeness_reduction(SatDnfRelation())
        w = reduction.sample(phi, rng=1)
        assert w is not None
        assert phi.evaluate(tuple(int(b) for b in w))


class TestRelationULSolver:
    def test_full_suite(self, even_zeros_dfa, rng):
        solver = RelationULSolver(even_zeros_dfa, 5)
        assert solver.count() == 16
        words = list(solver.enumerate())
        assert len(words) == 16
        assert solver.sample(rng) in set(words)

    def test_rejects_ambiguous(self, endswith_one_nfa):
        with pytest.raises(AmbiguityError):
            RelationULSolver(endswith_one_nfa, 4)

    def test_sample_or_none_empty(self, rng):
        solver = RelationULSolver(NFA.empty_language("01"), 3)
        assert solver.sample_or_none(rng) is None

    def test_sample_empty_raises(self, rng):
        solver = RelationULSolver(NFA.empty_language("01"), 3)
        with pytest.raises(EmptyWitnessSetError):
            solver.sample(rng)


class TestRelationNLSolver:
    def test_full_suite(self, endswith_one_nfa, rng):
        solver = RelationNLSolver(endswith_one_nfa, 8, delta=0.3, rng=rng, params=FAST)
        exact = 2**8 - 1
        assert solver.count_exact() == exact
        estimate = solver.count_approx()
        assert abs(estimate - exact) <= 0.4 * exact
        words = list(solver.enumerate())
        assert len(words) == exact
        w = solver.sample()
        assert w is not None and endswith_one_nfa.accepts(w)

    def test_sample_many(self, endswith_one_nfa, rng):
        solver = RelationNLSolver(endswith_one_nfa, 8, delta=0.3, rng=rng, params=FAST)
        samples = solver.sample_many(5)
        assert len(samples) == 5


class TestRelationFacades:
    def test_relation_nl_on_dnf(self, rng):
        phi = random_dnf(7, 3, 2, rng=8)
        nl = RelationNL(SatDnfRelation(), delta=0.3, rng=rng, params=FAST)
        exact = phi.count_models_brute()
        assert nl.count_exact(phi) == exact
        estimate = nl.count_approx(phi)
        assert abs(estimate - exact) <= 0.4 * exact
        assignment = nl.sample(phi)
        assert phi.evaluate(assignment)
        enumerated = list(nl.enumerate(phi))
        assert len(enumerated) == exact

    def test_upgrade_if_unambiguous(self, rng):
        # A DNF whose terms are disjoint compiles to an unambiguous NFA.
        from repro.dnf.formulas import DNFFormula, DNFTerm

        phi = DNFFormula(
            num_variables=4,
            terms=(
                DNFTerm.from_dict({0: 0, 1: 0}),
                DNFTerm.from_dict({0: 1, 1: 1}),
            ),
        )
        nl = RelationNL(SatDnfRelation(), rng=rng)
        upgraded = nl.upgrade_if_unambiguous(phi)
        assert upgraded is not None
        assert upgraded.count() == phi.count_models_brute()

    def test_relation_ul_on_disjoint_dnf(self, rng):
        from repro.dnf.formulas import DNFFormula, DNFTerm

        phi = DNFFormula(
            num_variables=4,
            terms=(DNFTerm.from_dict({0: 0}), DNFTerm.from_dict({0: 1, 1: 1})),
        )
        ul = RelationUL(SatDnfRelation())
        assert ul.count(phi) == phi.count_models_brute()
        assignment = ul.sample(phi, rng)
        assert phi.evaluate(assignment)


class TestSpanL:
    def test_spanl_function_exact_and_approx(self):
        phi = random_dnf(7, 3, 2, rng=9)
        fn = SpanLFunction(
            dnf_transducer(), witness_length=lambda f: f.num_variables, name="#DNF"
        )
        exact = fn.exact(phi)
        assert exact == phi.count_models_brute()
        estimate = fn.approx(phi, delta=0.3, rng=2, params=FAST)
        assert abs(estimate - exact) <= 0.4 * exact


class TestPaddedWitness:
    def test_pad_strip_roundtrip(self):
        helper = PaddedWitness()
        w = word("ab")
        padded = helper.pad(w, 5)
        assert len(padded) == 5
        assert helper.strip(padded) == w

    def test_pad_too_long(self):
        with pytest.raises(ValueError):
            PaddedWitness().pad(word("abc"), 2)
