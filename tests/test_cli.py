"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.automata.serialization import nfa_to_json
from repro.cli import main


def run_cli(capsys, *argv) -> tuple[int, str, str]:
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestCount:
    def test_exact_unambiguous(self, capsys):
        code, out, _ = run_cli(
            capsys, "count", "--regex", "(ab|ba)*", "--alphabet", "ab", "-n", "6"
        )
        assert code == 0
        assert out.strip() == "8"

    def test_exact_ambiguous(self, capsys):
        code, out, _ = run_cli(
            capsys, "count", "--regex", "(a|b)*a(a|b)*", "--alphabet", "ab", "-n", "5"
        )
        assert code == 0
        assert out.strip() == "31"

    def test_approx(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "count", "--regex", "(a|b)*a(a|b)*", "--alphabet", "ab",
            "-n", "5", "--approx", "--delta", "0.3", "--seed", "1",
        )
        assert code == 0
        assert abs(float(out.strip()) - 31) <= 0.35 * 31

    def test_nfa_json_input(self, capsys, tmp_path, even_zeros_dfa):
        path = tmp_path / "machine.json"
        path.write_text(nfa_to_json(even_zeros_dfa))
        code, out, _ = run_cli(capsys, "count", "--nfa-json", str(path), "-n", "5")
        assert code == 0
        assert out.strip() == "16"

    def test_missing_input(self, capsys):
        with pytest.raises(SystemExit):
            main(["count", "-n", "3"])


class TestSampleEnumInspect:
    def test_sample(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "sample", "--regex", "(ab|ba)*", "--alphabet", "ab",
            "-n", "6", "--count", "3", "--seed", "5",
        )
        assert code == 0
        lines = out.strip().splitlines()
        assert len(lines) == 3
        assert all(len(line) == 6 for line in lines)

    def test_enum_with_limit(self, capsys):
        code, out, _ = run_cli(
            capsys, "enum", "--regex", "(a|b)*", "--alphabet", "ab", "-n", "3",
            "--limit", "4",
        )
        assert code == 0
        assert len(out.strip().splitlines()) == 4

    def test_inspect(self, capsys):
        code, out, _ = run_cli(
            capsys, "inspect", "--regex", "(ab|ba)*", "--alphabet", "ab",
            "--spectrum", "4",
        )
        assert code == 0
        assert "unambiguous   : True" in out
        assert "RelationUL" in out
        assert "|L_4  |       : 4" in out.replace("  |", "  |")  # spectrum rows present

    def test_inspect_ambiguous_class(self, capsys):
        code, out, _ = run_cli(
            capsys, "inspect", "--regex", "(a|b)*a(a|b)*", "--alphabet", "ab"
        )
        assert code == 0
        assert "RelationNL" in out


class TestDot:
    def test_automaton_dot(self, capsys):
        code, out, _ = run_cli(capsys, "dot", "--regex", "ab", "--alphabet", "ab")
        assert code == 0
        assert out.startswith("digraph")

    def test_unrolled_dot(self, capsys):
        code, out, _ = run_cli(
            capsys, "dot", "--regex", "(ab)*", "--alphabet", "ab", "--unroll", "4"
        )
        assert code == 0
        assert "rank=same" in out


class TestErrors:
    def test_bad_regex_reports_error(self, capsys):
        code, _, err = run_cli(capsys, "count", "--regex", "(", "-n", "3")
        assert code == 1
        assert "error:" in err


class TestDomainInputs:
    """The facade-era inputs: --dnf, --rpq, and --backend selection."""

    @pytest.fixture
    def dnf_file(self, tmp_path):
        path = tmp_path / "formula.txt"
        path.write_text("x0 & x2 | !x1 & x3\n")
        return str(path)

    @pytest.fixture
    def graph_file(self, tmp_path):
        from repro.graphdb.graph import graph_to_json, grid_graph

        path = tmp_path / "grid.json"
        path.write_text(graph_to_json(grid_graph(3, 3)))
        return str(path)

    def test_dnf_count(self, capsys, dnf_file):
        code, out, _ = run_cli(capsys, "count", "--dnf", dnf_file)
        assert code == 0
        assert out.strip() == "7"  # brute-force model count of the formula

    def test_dnf_count_karp_luby_backend(self, capsys, dnf_file):
        code, out, _ = run_cli(
            capsys, "count", "--dnf", dnf_file, "--backend", "karp_luby", "--seed", "1"
        )
        assert code == 0
        assert abs(float(out.strip()) - 7) <= 0.3 * 7

    def test_dnf_length_mismatch_rejected(self, capsys, dnf_file):
        with pytest.raises(SystemExit):
            main(["count", "--dnf", dnf_file, "-n", "3"])

    def test_dnf_sample_and_enum(self, capsys, dnf_file):
        code, out, _ = run_cli(
            capsys, "sample", "--dnf", dnf_file, "--count", "2", "--seed", "3"
        )
        assert code == 0
        assert all(len(line) == 4 for line in out.strip().splitlines())
        code, out, _ = run_cli(capsys, "enum", "--dnf", dnf_file)
        assert code == 0
        assert len(out.strip().splitlines()) == 7

    def test_rpq_count_closed_form(self, capsys, graph_file):
        code, out, _ = run_cli(
            capsys,
            "count", "--rpq", "--graph-json", graph_file,
            "--source", "(0, 0)", "--target", "(2, 2)",
            "--regex", "(r|d)*", "-n", "4",
        )
        assert code == 0
        assert out.strip() == "6"  # C(4, 2) monotone grid paths

    def test_rpq_sample_prints_paths(self, capsys, graph_file):
        code, out, _ = run_cli(
            capsys,
            "sample", "--rpq", "--graph-json", graph_file,
            "--source", "(0, 0)", "--target", "(2, 2)",
            "--regex", "(r|d)*", "-n", "4", "--seed", "2",
        )
        assert code == 0
        assert "→" in out

    def test_rpq_missing_pieces_rejected(self, capsys, graph_file):
        with pytest.raises(SystemExit):
            main(["count", "--rpq", "--graph-json", graph_file, "-n", "4"])

    def test_rpq_unknown_vertex_rejected(self, capsys, graph_file):
        with pytest.raises(SystemExit):
            main([
                "count", "--rpq", "--graph-json", graph_file,
                "--source", "nowhere", "--target", "(2, 2)",
                "--regex", "(r|d)*", "-n", "4",
            ])

    def test_unknown_backend_reports_error(self, capsys):
        code, _, err = run_cli(
            capsys,
            "count", "--regex", "(ab)*", "--alphabet", "ab", "-n", "4",
            "--backend", "nope",
        )
        assert code == 1
        assert "unknown solver backend" in err

    def test_montecarlo_backend(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "count", "--regex", "(a|b)*a(a|b)*", "--alphabet", "ab",
            "-n", "5", "--backend", "montecarlo", "--seed", "2",
        )
        assert code == 0
        assert abs(float(out.strip()) - 31) <= 0.5 * 31


class TestCfgInput:
    """--cfg FILE: context-free grammars from the command line."""

    @pytest.fixture
    def cfg_file(self, tmp_path):
        path = tmp_path / "grammar.txt"
        # a^k b^k in CNF: exactly one word per even length.
        path.write_text(
            "# toy balanced grammar\n"
            "S -> A T | A B\n"
            "T -> S B\n"
            "A -> a\n"
            "B -> b\n"
        )
        return str(path)

    def test_cfg_count(self, capsys, cfg_file):
        code, out, _ = run_cli(capsys, "count", "--cfg", cfg_file, "-n", "6")
        assert code == 0
        assert out.strip() == "1"

    def test_cfg_enum(self, capsys, cfg_file):
        code, out, _ = run_cli(capsys, "enum", "--cfg", cfg_file, "-n", "4")
        assert code == 0
        assert out.strip() == "aabb"

    def test_cfg_sample(self, capsys, cfg_file):
        code, out, _ = run_cli(
            capsys, "sample", "--cfg", cfg_file, "-n", "2", "--seed", "4"
        )
        assert code == 0
        assert out.strip() == "ab"

    def test_cfg_requires_length(self, cfg_file):
        with pytest.raises(SystemExit):
            main(["count", "--cfg", cfg_file])

    def test_cfg_bad_syntax_rejected(self, capsys, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("S = A B\n")
        code, _, err = run_cli(capsys, "count", "--cfg", str(path), "-n", "2")
        assert code == 1
        assert "error:" in err


class TestBatchSampling:
    def test_batch_prints_k_witnesses(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "sample", "--regex", "(ab|ba)*", "--alphabet", "ab",
            "-n", "6", "--batch", "5", "--seed", "9",
        )
        assert code == 0
        lines = out.strip().splitlines()
        assert len(lines) == 5
        assert all(len(line) == 6 and set(line) <= {"a", "b"} for line in lines)

    def test_batch_zero(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "sample", "--regex", "(ab|ba)*", "--alphabet", "ab",
            "-n", "4", "--batch", "0",
        )
        assert code == 0
        assert out.strip() == ""


class TestVersionAndUsage:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        import repro

        assert repro.__version__ in out

    def test_no_subcommand_exits_2_with_usage(self, capsys):
        assert main([]) == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "command is required" in err


class TestServeAndQuery:
    """End-to-end: a real ``repro serve --port`` subprocess answered by
    ``repro query`` subprocesses (the CI smoke scenario)."""

    @pytest.fixture
    def server(self):
        import os
        import subprocess
        import sys as _sys

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(root, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro", "serve", "--port", "0"],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
            cwd=root,
        )
        announce = proc.stderr.readline().strip()
        port = int(announce.rsplit(":", 1)[1])

        def query(*argv):
            return subprocess.run(
                [_sys.executable, "-m", "repro", "query", *argv, "--port", str(port)],
                env=env,
                capture_output=True,
                text=True,
                cwd=root,
                timeout=60,
            )

        yield query
        query("shutdown")
        proc.wait(timeout=10)

    def test_query_count_matches_local(self, capsys, server):
        remote = server("count", "--regex", "(ab|ba)*", "--alphabet", "ab", "-n", "10")
        assert remote.returncode == 0, remote.stderr
        code, local, _ = run_cli(
            capsys, "count", "--regex", "(ab|ba)*", "--alphabet", "ab", "-n", "10"
        )
        assert code == 0
        assert remote.stdout.strip() == local.strip()

    def test_query_seeded_sample_matches_local(self, capsys, server):
        argv = ["--regex", "(ab|ba)*", "--alphabet", "ab", "-n", "8",
                "--batch", "3", "--seed", "5"]
        remote = server("sample", *argv)
        assert remote.returncode == 0, remote.stderr
        # The protocol's substream contract: identical to the in-process
        # facade with use_substreams.
        from repro.api import WitnessSet

        ws = WitnessSet.from_regex("(ab|ba)*", 8, alphabet="ab", store=False)
        expected = [
            "".join(map(str, w))
            for w in ws.sample_batch(3, rng=5, use_substreams=True)
        ]
        assert remote.stdout.strip().splitlines() == expected

    def test_query_ping(self, server):
        result = server("ping")
        assert result.returncode == 0
        assert result.stdout.strip() == "pong"

    def test_query_enum_streams_and_matches_local(self, capsys, server):
        argv = ["--regex", "(ab|ba)*", "--alphabet", "ab", "-n", "8"]
        remote = server("enum", *argv, "--chunk-size", "3")
        assert remote.returncode == 0, remote.stderr
        code, local, _ = run_cli(capsys, "enum", *argv)
        assert code == 0
        assert remote.stdout.splitlines() == local.splitlines()
        # The --enumerate spelling without a positional op.
        flagged = server("--enumerate", *argv, "--limit", "4")
        assert flagged.returncode == 0, flagged.stderr
        assert flagged.stdout.splitlines() == local.splitlines()[:4]

    def test_query_enumerate_huge_set_streams_immediately(self, server):
        # 2^48 witnesses: any output at all proves the server streams
        # instead of materializing.
        result = server(
            "enum", "--regex", "(a|b)*", "--alphabet", "ab", "-n", "48",
            "--limit", "3",
        )
        assert result.returncode == 0, result.stderr
        lines = result.stdout.splitlines()
        assert len(lines) == 3 and all(len(line) == 48 for line in lines)

    def test_query_without_server_is_a_clean_error(self, capsys):
        # Connection refused must print a one-line error, not a traceback.
        code = main(["query", "ping", "--port", "1", "--host", "127.0.0.1"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
