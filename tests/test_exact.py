"""Unit tests for exact counting (Section 5.3.2) and the DP tables."""

from __future__ import annotations

import pytest

from repro.automata.nfa import NFA, word
from repro.automata.random_gen import ambiguity_blowup, divisibility_dfa, random_nfa, random_ufa
from repro.baselines.naive import brute_force_count
from repro.core.exact import (
    backward_run_table,
    count_accepting_runs_of_length,
    count_words_exact,
    count_words_ufa,
    forward_run_table,
    length_spectrum,
    run_count_by_word,
)
from repro.core.unroll import unroll, unroll_trimmed
from repro.errors import AmbiguityError


class TestRunCounting:
    def test_even_zeros(self, even_zeros_dfa):
        # DFA: runs = words = 2^{n-1} for n ≥ 1.
        for n in range(1, 8):
            assert count_accepting_runs_of_length(even_zeros_dfa, n) == 2 ** (n - 1)

    def test_zero_length(self, even_zeros_dfa):
        assert count_accepting_runs_of_length(even_zeros_dfa, 0) == 1

    def test_run_inflation_on_ambiguous(self, endswith_one_nfa):
        # Runs: each word with k ones contributes k runs: total = n·2^{n-1}.
        for n in range(1, 7):
            assert count_accepting_runs_of_length(endswith_one_nfa, n) == n * 2 ** (n - 1)

    def test_blowup_runs(self):
        nfa = ambiguity_blowup(4)
        # Each gadget contributes (2 runs for 'aa' + 1 for 'ba'): total 3^4.
        assert count_accepting_runs_of_length(nfa.without_epsilon(), 8) == 3**4


class TestCountWordsUfa:
    def test_matches_brute_force(self, even_zeros_dfa):
        for n in range(6):
            assert count_words_ufa(even_zeros_dfa, n) == brute_force_count(even_zeros_dfa, n)

    def test_raises_on_ambiguous(self, endswith_one_nfa):
        with pytest.raises(AmbiguityError):
            count_words_ufa(endswith_one_nfa, 4)

    def test_check_skip(self, even_zeros_dfa):
        assert count_words_ufa(even_zeros_dfa, 4, check=False) == 8

    def test_random_ufas(self, rng):
        for _ in range(8):
            ufa = random_ufa(6, rng=rng)
            for n in range(5):
                assert count_words_ufa(ufa, n) == brute_force_count(ufa, n)


class TestCountWordsExact:
    def test_matches_brute_force_ambiguous(self, endswith_one_nfa):
        for n in range(7):
            assert count_words_exact(endswith_one_nfa, n) == 2**n - 1

    def test_random_nfas(self, rng):
        for _ in range(8):
            nfa = random_nfa(5, density=1.6, rng=rng)
            for n in range(5):
                assert count_words_exact(nfa, n) == brute_force_count(nfa, n)

    def test_divisibility_counts(self):
        nfa = divisibility_dfa(2, 3)
        # Multiples of 3 among 0..2^n-1 (with leading zeros): floor((2^n-1)/3)+1.
        for n in range(1, 10):
            assert count_words_exact(nfa, n) == (2**n - 1) // 3 + 1

    def test_bignum_counts(self):
        # 2^200 words — must be exact, not float.
        full = NFA.full_language("01").without_epsilon()
        assert count_words_exact(full, 200) == 2**200

    def test_empty_language(self):
        assert count_words_exact(NFA.empty_language("01"), 5) == 0

    def test_zero_length(self):
        assert count_words_exact(NFA.only_empty_word("01"), 0) == 1
        assert count_words_exact(NFA.empty_language("01"), 0) == 0


class TestTables:
    def test_forward_totals(self, even_zeros_dfa):
        dag = unroll(even_zeros_dfa, 4)
        table = forward_run_table(dag)
        # Total runs of length t is 2^t for this complete DFA.
        for t in range(5):
            assert sum(table[t].values()) == 2**t

    def test_backward_matches_forward(self, rng):
        """Σ_q fwd[t][q]·bwd[t][q] is the total accepting-run count, ∀t."""
        for _ in range(5):
            nfa = random_nfa(5, density=1.5, rng=rng)
            dag = unroll_trimmed(nfa, 6)
            fwd = forward_run_table(dag)
            bwd = backward_run_table(dag)
            total = count_accepting_runs_of_length(nfa.without_epsilon(), 6)
            for t in range(7):
                crossing = sum(
                    fwd[t].get(state, 0) * bwd[t].get(state, 0) for state in dag.layer(t)
                )
                assert crossing == total

    def test_backward_at_final_layer(self, even_zeros_dfa):
        dag = unroll_trimmed(even_zeros_dfa, 3)
        bwd = backward_run_table(dag)
        assert bwd[3] == {"even": 1}


class TestSpectrumAndProfiles:
    def test_length_spectrum_ufa(self, even_zeros_dfa):
        spectrum = length_spectrum(even_zeros_dfa, range(5))
        assert spectrum == {0: 1, 1: 1, 2: 2, 3: 4, 4: 8}

    def test_length_spectrum_exact_mode(self, endswith_one_nfa):
        spectrum = length_spectrum(endswith_one_nfa, [2, 3], exact_nfa=True)
        assert spectrum == {2: 3, 3: 7}

    def test_run_count_by_word(self, endswith_one_nfa):
        profile = run_count_by_word(endswith_one_nfa, 3)
        assert profile[word("111")] == 3
        assert profile[word("100")] == 1
        assert len(profile) == 7
