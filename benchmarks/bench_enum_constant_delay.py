"""E1 — constant-delay enumeration for UFAs (Theorem 5 / Algorithm 1).

Claim: after polynomial preprocessing, the inter-output delay is bounded
by c·|y| — in particular *independent of the automaton size m*.  We sweep
m, enumerate a fixed number of outputs at fixed n, and record the mean
per-output delay normalized by n; the series should be flat in m.
"""

from __future__ import annotations

import pytest

from repro.core.enumeration import enumerate_words_ufa
from repro.utils.timing import DelayRecorder
from workloads import ufa_sweep

N = 16
OUTPUTS = 2000


@pytest.mark.parametrize("m,ufa", ufa_sweep(), ids=lambda v: str(v) if isinstance(v, int) else "")
def test_constant_delay_enum(benchmark, observe, m, ufa):
    def run():
        recorder = DelayRecorder(keep_items=False)
        recorder.drain(enumerate_words_ufa(ufa, N, check=False), limit=OUTPUTS)
        return recorder

    recorder = benchmark.pedantic(run, rounds=3, iterations=1)
    produced = len(recorder.delays)
    if produced:
        # Skip the first delay (contains the DAG preprocessing).
        steady = recorder.delays[1:] or recorder.delays
        mean_us = 1e6 * sum(steady) / len(steady)
        max_us = 1e6 * max(steady)
        observe(
            "E1",
            f"m={m:<4} n={N} outputs={produced:<6} "
            f"mean-delay={mean_us:7.2f}µs max={max_us:8.2f}µs per-output",
        )
    assert produced > 0
