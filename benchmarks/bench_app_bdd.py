"""E12 — OBDD / nOBDD evaluation (Corollaries 9–10).

OBDDs: exact model counting and uniform model sampling through the
RelationUL pipeline.  nOBDDs: the ambiguous case through the FPRAS.
"""

from __future__ import annotations

import pytest

from repro.bdd.builders import conj, disj, neg, obdd_from_formula, random_nobdd, var
from repro.bdd.nobdd import EvalNobddRelation
from repro.bdd.obdd import EvalObddRelation
from repro.core.classes import RelationULSolver
from repro.core.exact import count_words_exact
from repro.core.fpras import approx_count_nfa
from workloads import BENCH_FPRAS, SEED


def staircase_formula(width: int):
    """(x0 ∧ x1) ∨ (x2 ∧ x3) ∨ … — a formula with a compact OBDD."""
    parts = [conj(var(f"x{2 * i}"), var(f"x{2 * i + 1}")) for i in range(width)]
    return disj(*parts) if len(parts) > 1 else parts[0]


@pytest.mark.parametrize("width", [3, 5, 7])
def test_obdd_model_counting(benchmark, observe, width):
    order = [f"x{i}" for i in range(2 * width)]
    obdd = obdd_from_formula(staircase_formula(width), order)
    relation = EvalObddRelation()
    compiled = relation.compile(obdd)

    def count():
        return RelationULSolver(compiled.nfa, compiled.length, check=False).count()

    models = benchmark(count)
    # Inclusion–exclusion: 4^w - 3^w models of the staircase.
    expected = 4**width - 3**width
    observe("E12", f"OBDD staircase width={width} vars={2*width} models={models} (expected {expected})")
    assert models == expected


def test_obdd_uniform_model_sampling(benchmark, observe):
    order = [f"x{i}" for i in range(10)]
    obdd = obdd_from_formula(staircase_formula(5), order)
    relation = EvalObddRelation()
    compiled = relation.compile(obdd)
    solver = RelationULSolver(compiled.nfa, compiled.length, check=False)
    benchmark(solver.sample, 0)
    for seed in range(10):
        model = relation.decode_witness(obdd, solver.sample(seed))
        assert obdd.evaluate(model) == 1
    observe("E12", "OBDD sampling: 10/10 sampled assignments are models")


@pytest.mark.parametrize("num_vars", [8, 12])
def test_nobdd_fpras(benchmark, observe, num_vars):
    nobdd = random_nobdd(num_vars, branches=4, rng=SEED)
    compiled = EvalNobddRelation().compile(nobdd)
    exact = count_words_exact(compiled.nfa, compiled.length)

    def estimate():
        return approx_count_nfa(
            compiled.nfa, compiled.length, delta=0.3, rng=2, params=BENCH_FPRAS
        )

    value = benchmark.pedantic(estimate, rounds=1, iterations=1)
    observe("E12", f"nOBDD vars={num_vars} exact-models={exact} fpras={value:.1f}")
    if exact:
        assert abs(value - exact) <= 0.4 * exact
