"""S1 — the witness service: warm-store startup, engine throughput,
scheduling-invariant sampling, and the async server's concurrency wins.

Claims measured (and asserted, so regressions fail the suite):

* S1a: a warm :class:`KernelStore` start answers its first query with
  zero lowering work — the kernel and the ambiguity certificate both
  come off disk (store hit) — and is ≥ 5x faster than the cold start on
  a 200-state NFA at n = 100.
* S1b: a 4-worker engine sustains higher throughput than the
  single-process engine on a mixed count/sample workload.  The ≥ 2x
  bound is asserted when the machine actually has ≥ 4 usable cores
  (CI runners do); on smaller machines the numbers are recorded as an
  observation only — a fork pool cannot beat physics.
* S1c: seeded ``sample`` results are **byte-identical** between
  in-process execution (workers=0), a single-worker pool and a 4-worker
  pool — the deterministic-substream contract makes worker scheduling
  invisible in the output.  Asserted unconditionally.
* S1d: coalescing same-spec sample requests into one ``sample_batch``
  kernel pass beats answering them one at a time (recorded; this is the
  server's batching win, independent of core count).
* S1e: the async TCP server serves N parallel clients ≥ 3x faster than
  the same workload issued sequentially over one connection —
  cross-connection coalescing plus concurrent I/O is the whole point of
  the asyncio rewrite.  Responses are byte-identical either way.
* S1f: streamed enumeration's first chunk arrives in well under two
  seconds on a 2⁶⁰-word witness set — the constant-delay guarantee as a
  user-visible first-result latency, impossible if the server
  materialized the set.
* S1g: a warm ``KernelStore`` start through the mmap tier
  (``KernelStore(root, mmap=True)``, snapshot format v2) beats the
  full-deserialize restore on a payload-heavy kernel — the zero-copy
  views skip the array copies, so only the JSON header is parsed
  eagerly.  Gated at ≥ 1.5x; answers are identical either way.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time

from repro.api import WitnessSet
from repro.automata.nfa import NFA
from repro.automata.random_gen import random_ufa
from repro.automata.serialization import nfa_to_json
from repro.core.kernel import compile_nfa
from repro.service import Engine, KernelStore, ServiceClient
from repro.service.fingerprint import fingerprint_source
from repro.service.server import start_tcp_server_thread

M = 200          # automaton states (the ISSUE-2/ISSUE-4 acceptance instance)
N = 100          # witness length
SEED = 20190621

#: Throughput workload shape: WAVES rounds of the mixed request batch.
WAVES = 5
SPECS = 8
SAMPLES_PER_REQUEST = 150


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _instance(seed: int = SEED, states: int = M, length: int = N):
    return random_ufa(
        states, rng=seed, completeness=0.95, ensure_nonempty_length=length
    )


# ----------------------------------------------------------------------
# S1a — warm-store startup
# ----------------------------------------------------------------------


def _first_query_seconds(nfa, store) -> tuple[int, float]:
    """Fresh witness set → first count answered (the startup path)."""
    started = time.perf_counter()
    ws = WitnessSet.from_nfa(nfa, N, store=store)
    count = ws.count()
    return count, time.perf_counter() - started


def test_warm_store_start_beats_cold(observe):
    nfa = _instance()
    root = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        store = KernelStore(root)
        cold_count, cold_seconds = _first_query_seconds(nfa, store)
        assert store.stats.stores >= 1, "cold start must persist its kernel"

        warm = KernelStore(root)  # fresh stats: a new process's view
        warm_count, warm_seconds = _first_query_seconds(nfa, warm)
        assert warm_count == cold_count
        assert warm.stats.hits >= 1 and warm.stats.misses == 0, (
            "warm start must answer from the store alone"
        )
        speedup = cold_seconds / warm_seconds
        observe(
            "S1a",
            f"m={M} n={N} first count: cold={cold_seconds:.3f}s "
            f"warm={warm_seconds:.3f}s speedup={speedup:.1f}x "
            f"(store {warm.stats.as_dict()})",
        )
        assert speedup >= 5.0, (
            f"warm start ({warm_seconds:.3f}s) must be ≥5x faster than cold "
            f"({cold_seconds:.3f}s), got {speedup:.1f}x"
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_warm_start_skips_all_preprocessing(observe):
    """Zero lowering work on the warm path: the facade never builds the
    stripped automaton, the unrolled DAG, or the self-product check."""
    nfa = _instance(SEED + 1)
    root = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        WitnessSet.from_nfa(nfa, N, store=KernelStore(root)).count()
        warm_ws = WitnessSet.from_nfa(nfa, N, store=KernelStore(root))
        warm_ws.count()
        warm_ws.sample_batch(10, rng=1, use_substreams=True)
        built = set(warm_ws._cache)
        assert "stripped" not in built and "dag" not in built, (
            f"warm path built preprocessing artifacts: {sorted(built)}"
        )
        observe("S1a", f"warm-path artifacts built: {sorted(built)}")
    finally:
        shutil.rmtree(root, ignore_errors=True)


# ----------------------------------------------------------------------
# S1g — mmap zero-copy warm start (ISSUE-8 acceptance gate)
# ----------------------------------------------------------------------

MMAP_MIN_SPEEDUP = 1.5


def _payload_heavy_kernel():
    """A kernel whose snapshot is dominated by CSR/count payload (~30MB):
    a 2048-state complete DFA on 64 symbols with a dead mirror keeping
    the count packed (4 live symbols per state → 4^30 = 2^60 words)."""
    m, nsym, live, mult, n = 1024, 64, 4, 769, 30
    transitions = []
    for c in range(m):
        alive, dead = c * 2 + 1, c * 2
        for i in range(nsym):
            target = (mult * c + i) % m
            transitions.append((dead, i, target * 2))
            trapdoor = (c + i) % (nsym // live) != 3
            transitions.append((alive, i, target * 2 if trapdoor else target * 2 + 1))
    nfa = NFA(
        states=set(range(2 * m)),
        alphabet=set(range(nsym)),
        transitions=set(transitions),
        initial=1,
        finals=set(range(1, 2 * m, 2)),
    )
    kernel = compile_nfa(nfa, n, trimmed=False)
    kernel.backward_counts()
    kernel.forward_counts()
    return nfa, kernel, n


def test_mmap_store_beats_full_deserialize(observe):
    nfa, kernel, n = _payload_heavy_kernel()
    root = tempfile.mkdtemp(prefix="repro-bench-mmap-")
    try:
        fingerprint = fingerprint_source(nfa)
        KernelStore(root).put(fingerprint, n, False, kernel)
        size_mb = os.path.getsize(KernelStore(root).path_for(fingerprint, n, False)) / 1e6

        seconds = {False: float("inf"), True: float("inf")}
        counts = {}
        for _ in range(3):  # best-of-3, alternating so page cache is fair
            for mmap_mode in (False, True):
                store = KernelStore(root, mmap=mmap_mode)
                started = time.perf_counter()
                restored = store.get(fingerprint, n, False)
                counts[mmap_mode] = restored.total_runs
                seconds[mmap_mode] = min(
                    seconds[mmap_mode], time.perf_counter() - started
                )
                if mmap_mode and restored._borrow_owner is not None:
                    assert store.stats.extra.get("mmap_hits", 0) == 1, (
                        "mmap store must hand out a borrowed (zero-copy) kernel"
                    )
        assert counts[False] == counts[True] == kernel.total_runs
        speedup = seconds[False] / seconds[True]
        observe(
            "S1g",
            f"{size_mb:.0f}MB snapshot warm get(): full-deserialize="
            f"{seconds[False] * 1000:.1f}ms mmap={seconds[True] * 1000:.1f}ms "
            f"speedup={speedup:.2f}x",
        )
        assert speedup >= MMAP_MIN_SPEEDUP, (
            f"mmap warm start {speedup:.2f}x below the "
            f"{MMAP_MIN_SPEEDUP}x acceptance gate"
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)


# ----------------------------------------------------------------------
# S1b / S1c — engine throughput and scheduling invariance
# ----------------------------------------------------------------------


def _specs() -> list[dict]:
    """Distinct mid-size instances, shipped by content (nfa JSON)."""
    specs = []
    for index in range(SPECS):
        nfa = _instance(SEED + 10 + index, states=80, length=60)
        specs.append({"kind": "nfa", "nfa": json.loads(nfa_to_json(nfa)), "n": 60})
    return specs


def _mixed_wave(specs: list[dict], wave: int) -> list[dict]:
    """One traffic wave: a count plus two seeded sample requests per spec."""
    requests: list[dict] = []
    rid = wave * 1000
    for spec_index, spec in enumerate(specs):
        requests.append({"id": rid, "op": "count", "spec": spec})
        rid += 1
        for burst in range(2):
            requests.append(
                {
                    "id": rid,
                    "op": "sample",
                    "spec": spec,
                    "k": SAMPLES_PER_REQUEST,
                    "seed": wave * 100 + spec_index * 10 + burst,
                }
            )
            rid += 1
    return requests


def _run_waves(engine: Engine, specs: list[dict]) -> tuple[float, int]:
    """Total wall-clock and request count for the full workload."""
    engine.execute(_mixed_wave(specs, 99))  # warm resident caches
    served = 0
    started = time.perf_counter()
    for wave in range(WAVES):
        served += len(engine.execute(_mixed_wave(specs, wave)))
    return time.perf_counter() - started, served


def test_engine_throughput_and_identity(observe):
    specs = _specs()
    store_root = tempfile.mkdtemp(prefix="repro-bench-engine-")
    try:
        # Pre-warm the shared store so worker cold misses restore
        # snapshots instead of lowering (the deployment configuration).
        with Engine(workers=0, store_root=store_root) as warmup:
            warmup.execute(
                [{"id": i, "op": "count", "spec": spec} for i, spec in enumerate(specs)]
            )

        identity_wave = _mixed_wave(specs, 7)

        with Engine(workers=0, store_root=store_root) as single:
            single_seconds, served = _run_waves(single, specs)
            single_results = [
                response.get("result") for response in single.execute(identity_wave)
            ]
        single_rps = served / single_seconds

        with Engine(workers=1, store_root=store_root) as one_worker:
            one_results = [
                response.get("result") for response in one_worker.execute(identity_wave)
            ]

        with Engine(workers=4, store_root=store_root) as pool:
            pool_seconds, pool_served = _run_waves(pool, specs)
            pool_results = [
                response.get("result") for response in pool.execute(identity_wave)
            ]
        pool_rps = pool_served / pool_seconds

        # S1c — byte identity across scheduling regimes (always binding).
        canonical = json.dumps(single_results, sort_keys=True)
        assert json.dumps(one_results, sort_keys=True) == canonical, (
            "single-worker results differ from in-process results"
        )
        assert json.dumps(pool_results, sort_keys=True) == canonical, (
            "4-worker results differ from in-process results"
        )

        cores = _usable_cores()
        ratio = pool_rps / single_rps
        observe(
            "S1b",
            f"mixed workload ({served} requests): single={single_rps:.0f} req/s "
            f"4-worker={pool_rps:.0f} req/s ratio={ratio:.2f}x (cores={cores})",
        )
        observe("S1c", "sample bytes identical across workers=0/1/4")
        if cores >= 4:
            assert ratio >= 2.0, (
                f"4-worker engine must sustain ≥2x single-process throughput "
                f"on {cores} cores, got {ratio:.2f}x"
            )
        else:
            observe(
                "S1b",
                f"≥2x gate skipped: only {cores} usable core(s) on this machine",
            )
    finally:
        shutil.rmtree(store_root, ignore_errors=True)


# ----------------------------------------------------------------------
# S1d — coalescing win
# ----------------------------------------------------------------------


def test_coalescing_beats_one_at_a_time(observe):
    # The classic serving shape: many independent single-sample requests
    # on one hot instance — exactly what the server's batch window
    # coalesces into one kernel pass.
    spec = _specs()[0]
    burst = [
        {"id": i, "op": "sample", "spec": spec, "k": 1, "seed": i}
        for i in range(120)
    ]
    with Engine(workers=0) as engine:
        engine.execute(burst)  # warm the kernel and weight caches

        single_seconds = batched_seconds = float("inf")
        singles = batched = None
        for _ in range(3):  # best-of-3 against scheduler noise
            started = time.perf_counter()
            singles = [engine.execute([request])[0] for request in burst]
            single_seconds = min(single_seconds, time.perf_counter() - started)

            started = time.perf_counter()
            batched = engine.execute(burst)
            batched_seconds = min(batched_seconds, time.perf_counter() - started)

    assert [r["result"] for r in singles] == [r["result"] for r in batched], (
        "coalescing must not change any response"
    )
    assert all(r.get("coalesced") == len(burst) for r in batched)
    speedup = single_seconds / batched_seconds
    observe(
        "S1d",
        f"{len(burst)} same-spec single-sample requests: one-at-a-time="
        f"{single_seconds * 1000:.1f}ms coalesced={batched_seconds * 1000:.1f}ms "
        f"({speedup:.2f}x)",
    )
    assert batched_seconds < single_seconds, (
        "one coalesced kernel pass must beat one-at-a-time execution"
    )


# ----------------------------------------------------------------------
# S1e / S1f — the async TCP server: concurrent clients, streamed enum
# ----------------------------------------------------------------------

CLIENTS = 8
REQUESTS_PER_CLIENT = 15

#: The streamed-enumeration instance: |W| = 2^60 — materialization is
#: physically impossible, so any answer at all proves streaming.
HUGE_SPEC = {"kind": "regex", "pattern": "(a|b)*", "alphabet": "ab", "n": 60}


def _start_server(engine: Engine, **kwargs):
    return start_tcp_server_thread(engine, **kwargs)


def _burst(client_index: int, spec: dict) -> list[dict]:
    return [
        {"op": "sample", "spec": spec, "k": 1, "seed": client_index * 1000 + i}
        for i in range(REQUESTS_PER_CLIENT)
    ]


def test_concurrent_clients_beat_sequential(observe):
    """S1e: N parallel clients vs the same requests sequentially."""
    spec = _specs()[0]
    engine = Engine(workers=0)
    thread, (host, port) = _start_server(engine)
    try:
        with ServiceClient(host, port, timeout=60) as warm:
            warm.request("count", spec)  # compile once before timing

        # Sequential: one connection, every request awaited in turn.
        sequential_results: list = []
        started = time.perf_counter()
        with ServiceClient(host, port, timeout=60) as client:
            for index in range(CLIENTS):
                for request in _burst(index, spec):
                    sequential_results.append(
                        client.result(request["op"], spec, k=1, seed=request["seed"])
                    )
        sequential_seconds = time.perf_counter() - started

        # Parallel: one connection per client thread, same total work.
        parallel_results: list = [None] * CLIENTS
        barrier = threading.Barrier(CLIENTS)

        def client_main(index: int) -> None:
            with ServiceClient(host, port, timeout=60) as client:
                barrier.wait(timeout=10)
                results = []
                for request in _burst(index, spec):
                    results.append(
                        client.result(request["op"], spec, k=1, seed=request["seed"])
                    )
                parallel_results[index] = results

        threads = [
            threading.Thread(target=client_main, args=(index,))
            for index in range(CLIENTS)
        ]
        started = time.perf_counter()
        for worker in threads:
            worker.start()
        for worker in threads:
            worker.join(timeout=120)
        parallel_seconds = time.perf_counter() - started

        flattened = [r for results in parallel_results for r in results]
        assert flattened == sequential_results, (
            "parallel responses must be byte-identical to sequential ones"
        )
        total = CLIENTS * REQUESTS_PER_CLIENT
        speedup = sequential_seconds / parallel_seconds
        observe(
            "S1e",
            f"{total} single-sample requests: sequential={sequential_seconds:.2f}s "
            f"({total / sequential_seconds:.0f} req/s) {CLIENTS}-parallel="
            f"{parallel_seconds:.2f}s ({total / parallel_seconds:.0f} req/s) "
            f"speedup={speedup:.1f}x",
        )
        assert speedup >= 3.0, (
            f"{CLIENTS} parallel clients must be ≥3x faster than sequential, "
            f"got {speedup:.1f}x"
        )
    finally:
        try:
            with ServiceClient(host, port, timeout=5) as client:
                client.shutdown()
        except OSError:
            pass
        thread.join(timeout=10)
        engine.close()


def test_streamed_enumeration_first_chunk_latency(observe):
    """S1f: time-to-first-witness on a 2^60-word set."""
    engine = Engine(workers=0)
    thread, (host, port) = _start_server(engine)
    try:
        with ServiceClient(host, port, timeout=60) as client:
            started = time.perf_counter()
            stream = client.enumerate(HUGE_SPEC, chunk_size=100)
            first = next(stream)
            first_seconds = time.perf_counter() - started
            head = [first] + [next(stream) for _ in range(299)]
            head_seconds = time.perf_counter() - started
            stream.close()
        assert len(set(head)) == 300 and all(len(w) == 60 for w in head)
        observe(
            "S1f",
            f"2^60-word set: first witness in {first_seconds * 1000:.0f}ms, "
            f"300 witnesses in {head_seconds * 1000:.0f}ms (chunked stream)",
        )
        assert first_seconds < 2.0, (
            f"first streamed witness took {first_seconds:.2f}s — the server "
            "must not materialize the witness set"
        )
    finally:
        try:
            with ServiceClient(host, port, timeout=5) as client:
                client.shutdown()
        except OSError:
            pass
        thread.join(timeout=10)
        engine.close()
