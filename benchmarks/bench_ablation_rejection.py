"""A2 — ablation: the rejection constant e⁻⁴ versus throughput/uniformity.

Algorithm 5 accepts each Sample walk with probability φ ≈ c·|U|/R for
c = e⁻⁴.  Larger c means fewer rejections (higher throughput) but less
headroom before φ ≥ 1 starts deterministically excluding words (a
uniformity hazard when estimates are noisy).  The recorded series shows
throughput scaling ≈ linearly with c while the chi-square stays healthy
until c approaches 1/estimate-drift.
"""

from __future__ import annotations

import math

import pytest

from repro.automata.operations import words_of_length
from repro.automata.random_gen import ambiguity_blowup
from repro.core.fpras import FprasParameters
from repro.core.plvug import LasVegasUniformGenerator
from repro.utils.stats import chi_square_uniformity

DEPTH = 6
N = 2 * DEPTH


@pytest.mark.parametrize("log_c", [-4, -2, -1])
def test_rejection_constant(benchmark, observe, log_c):
    constant = math.exp(log_c)
    params = FprasParameters(sample_size=48, rejection_constant=constant)
    nfa = ambiguity_blowup(DEPTH)
    generator = LasVegasUniformGenerator(nfa, N, delta=0.3, rng=3, params=params)

    rate = generator.empirical_acceptance_rate(trials=400)

    def draw():
        return generator.generate()

    benchmark.pedantic(draw, rounds=3, iterations=1)

    support = words_of_length(nfa, N)
    samples = generator.sample_many(len(support) * 8)
    result = chi_square_uniformity(samples, support)
    observe(
        "A2",
        f"c=e^{log_c}: acceptance={rate:6.4f} "
        f"chi2-p={result.p_value:5.3f} (uniform {'ok' if not result.rejects_uniformity(1e-4) else 'REJECTED'})",
    )
    assert rate > 0
