"""F1/F2 — regenerate the paper's Figures 1 and 2 and time the pipeline."""

from __future__ import annotations

from repro.automata.unambiguous import is_unambiguous
from repro.core.enumeration import enumerate_words_ufa
from repro.core.unroll import lemma15_graph
from repro.papers.figures import (
    figure1_nfa,
    figure2_dag_description,
    figure2_expected_words,
)


def test_figure1_2(benchmark, observe):
    """Rebuild Figure 1's automaton, derive Figure 2's DAG, verify both."""
    nfa = figure1_nfa()
    assert is_unambiguous(nfa)

    def build():
        return lemma15_graph(nfa, 3)

    dag, start, finals = benchmark(build)
    for layer, states in figure2_dag_description().items():
        assert dag.layer(layer) == frozenset(states)
    words = list(enumerate_words_ufa(nfa, 3))
    assert words[:2] == [tuple("aaa"), tuple("aab")]
    assert sorted(words) == figure2_expected_words()
    observe("F1/F2", f"figure-1 automaton: 7 states, unambiguous=True")
    observe(
        "F1/F2",
        "figure-2 DAG layers "
        + " | ".join(f"{t}:{sorted(dag.layer(t))}" for t in range(4))
        + f"; first outputs {''.join(words[0])}, {''.join(words[1])}",
    )
