"""A1 — ablation: sketch size k versus FPRAS error.

The paper's k = (nm/δ)^64 exists for the proof; this ablation maps the
practical frontier on a fixed hard instance: error falls roughly as
1/√k (the Hoeffding shape) and is already within δ = 0.3 at k ≈ 32–64.
The paper-faithful k for this instance is also printed for perspective.

Instance choice matters: on families whose per-vertex predecessor unions
are disjoint (e.g. the blowup family) the sketch fractions are exact and
error is 0 at every k — sampling noise only enters through *overlapping*
unions.  We therefore ablate on the Σ*·101·Σ* pattern automaton, whose
guess-the-occurrence structure overlaps heavily.
"""

from __future__ import annotations

import pytest

from repro.automata.random_gen import contains_pattern_nfa
from repro.core.exact import count_words_exact
from repro.core.fpras import FprasParameters, approx_count_nfa
from repro.papers.constants import PaperConstants
from repro.utils.stats import relative_error, summarize_errors

N = 14
NFA = contains_pattern_nfa("101")
EXACT = count_words_exact(NFA, N)


@pytest.mark.parametrize("k", [8, 16, 32, 64, 128])
def test_error_vs_k(benchmark, observe, k):
    params = FprasParameters(sample_size=k)

    def run():
        return approx_count_nfa(NFA, N, delta=0.3, rng=1, params=params)

    benchmark.pedantic(run, rounds=1, iterations=1)
    errors = [
        relative_error(approx_count_nfa(NFA, N, delta=0.3, rng=seed, params=params), EXACT)
        for seed in range(8)
    ]
    summary = summarize_errors(errors, delta=0.3)
    observe(
        "A1",
        f"k={k:<4} median-err={summary.median:6.3f} max-err={summary.maximum:6.3f} "
        f"within-δ={summary.within_delta_fraction:.2f}",
    )


def test_paper_k_for_perspective(benchmark, observe):
    m = NFA.without_epsilon().num_states
    paper_k = benchmark(PaperConstants().sample_size, N, m, 0.3)
    observe(
        "A1",
        f"paper-faithful k for this instance (n={N}, m={m}, δ=0.3): ≈ 10^{len(str(paper_k)) - 1}",
    )
    assert paper_k > 10**100
