"""E5 — the §6.1 naive Monte Carlo estimator collapses under ambiguity.

The paper's motivating negative result: the unbiased path-sampling
estimator needs exponentially many samples on families whose per-word
run counts diverge.  At an equal (small) sample budget we record both
methods' relative errors across the blowup depth sweep: the FPRAS stays
within δ while the Monte Carlo error explodes — the "who wins" shape, with
the crossover essentially at the first nontrivial depth.
"""

from __future__ import annotations

import pytest

from repro.baselines.montecarlo import naive_montecarlo_count
from repro.core.exact import count_words_exact
from repro.core.fpras import approx_count_nfa
from repro.utils.stats import relative_error
from workloads import BENCH_FPRAS, blowup_sweep

SAMPLES = 400  # equal budget for the MC leg


@pytest.mark.parametrize("depth,nfa", blowup_sweep(depths=(4, 6, 8, 10)), ids=lambda v: str(v) if isinstance(v, int) else "")
def test_montecarlo_vs_fpras(benchmark, observe, depth, nfa):
    n = 2 * depth
    exact = count_words_exact(nfa, n)

    def run_mc():
        return naive_montecarlo_count(nfa, n, samples=SAMPLES, rng=3)

    mc = benchmark.pedantic(run_mc, rounds=1, iterations=1)
    mc_errors = [
        relative_error(
            naive_montecarlo_count(nfa, n, samples=SAMPLES, rng=seed).estimate, exact
        )
        for seed in range(6)
    ]
    fpras_errors = [
        relative_error(
            approx_count_nfa(nfa, n, delta=0.3, rng=seed, params=BENCH_FPRAS), exact
        )
        for seed in range(6)
    ]
    mc_median = sorted(mc_errors)[len(mc_errors) // 2]
    fpras_median = sorted(fpras_errors)[len(fpras_errors) // 2]
    observe(
        "E5",
        f"depth={depth:<3} exact={exact:<6} MC-median-err={mc_median:6.3f} "
        f"(rel-std {mc.empirical_relative_std:6.2f})  FPRAS-median-err={fpras_median:6.3f}",
    )
    # The qualitative claim: by depth 8 the MC spread dwarfs the FPRAS's.
    if depth >= 8:
        assert mc.empirical_relative_std > 1.0
        assert fpras_median <= 0.3
