"""E7 — exact uniform generation for UFAs (§5.3.3).

Claims: (i) each sample is drawn in polynomial time after one DP table
build, (ii) the distribution is exactly uniform.  We benchmark per-sample
throughput across the m sweep and chi-square the output on an instance
with a fully enumerable support.
"""

from __future__ import annotations

import pytest

from repro.automata.operations import words_of_length
from repro.automata.random_gen import random_ufa
from repro.core.exact_sampler import ExactUniformSampler
from repro.utils.stats import chi_square_uniformity
from workloads import SEED, ufa_sweep

N = 24


@pytest.mark.parametrize("m,ufa", ufa_sweep(), ids=lambda v: str(v) if isinstance(v, int) else "")
def test_exact_sampler_throughput(benchmark, observe, m, ufa):
    sampler = ExactUniformSampler(ufa, N, check=False)
    if sampler.count == 0:
        pytest.skip("empty witness set at this length")
    out = benchmark(sampler.sample, 7)
    assert len(out) == N
    observe("E7", f"m={m:<4} n={N} |L_n|={sampler.count} per-sample benchmarked above")


def test_exact_sampler_uniformity(benchmark, observe):
    ufa = random_ufa(8, rng=SEED, completeness=0.85, ensure_nonempty_length=8)
    support = words_of_length(ufa, 8)
    sampler = ExactUniformSampler(ufa, 8, check=False)
    benchmark(sampler.sample, 3)
    samples = sampler.sample_many(max(2000, len(support) * 60), rng=11)
    result = chi_square_uniformity(samples, support)
    observe(
        "E7",
        f"uniformity: support={len(support)} draws={len(samples)} "
        f"chi2={result.statistic:.1f} dof={result.dof} p={result.p_value:.3f}",
    )
    assert not result.rejects_uniformity()
