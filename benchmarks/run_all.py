#!/usr/bin/env python
"""Run every ``benchmarks/bench_*.py`` and consolidate a perf baseline.

Usage::

    python benchmarks/run_all.py [--full] [--out benchmarks/BENCH_api.json]
    python benchmarks/run_all.py --compare benchmarks/BENCH_api.json

Each bench module runs as its own pytest session (they are independent
experiment files); per-file status, wall-clock and the tail of the
output land in one JSON document so future PRs can diff against a
recorded baseline.  By default pytest-benchmark's calibrated timing
loops are disabled (``--benchmark-disable``) — the point of the default
run is a *regression-visible wall-clock baseline*, not publication-grade
statistics; pass ``--full`` for the calibrated run.

``--compare BASELINE`` turns the run into a regression gate: after
running, each file's wall-clock is diffed against the baseline document
and the process exits nonzero when any file got more than
``--slowdown-factor`` (default 2×) slower — the CI hook for "don't
quietly regress a hot path".
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

#: Files faster than this in the baseline are too noisy to gate on.
MIN_GATED_SECONDS = 0.5


def load_baseline(baseline_path: Path) -> dict:
    """Parse (and validate) a recorded ``repro.bench`` document."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    if baseline.get("format") != "repro.bench":
        raise SystemExit(f"{baseline_path} is not a repro.bench document")
    return baseline


def compare_against_baseline(
    results: dict, baseline: dict, slowdown_factor: float
) -> list[str]:
    """Regressed file names (``new > factor × old``), printed as a table."""
    old_results = baseline.get("results", {})
    regressions: list[str] = []
    print(f"[run_all] comparing against the recorded baseline "
          f"(>{slowdown_factor:g}x slowdown fails)")
    for name, entry in sorted(results.items()):
        old = old_results.get(name)
        if old is None or old.get("status") != "passed" or entry["status"] != "passed":
            continue
        old_seconds = max(float(old.get("seconds", 0.0)), 1e-9)
        ratio = entry["seconds"] / old_seconds
        flag = ""
        if old_seconds >= MIN_GATED_SECONDS and ratio > slowdown_factor:
            regressions.append(name)
            flag = "  << REGRESSION"
        print(f"[run_all]   {name:<36} {old_seconds:>7.2f}s -> "
              f"{entry['seconds']:>7.2f}s  ({ratio:4.2f}x){flag}")
    if regressions:
        print(f"[run_all] {len(regressions)} regression(s): {', '.join(regressions)}")
    else:
        print("[run_all] no regressions")
    return regressions


def run_one(path: Path, full: bool, timeout: float) -> dict:
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(path),
        "-q",
        "-p",
        "no:cacheprovider",
    ]
    if not full:
        command.append("--benchmark-disable")
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    start = time.perf_counter()
    try:
        proc = subprocess.run(
            command,
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=timeout,
        )
        returncode = proc.returncode
        tail = (proc.stdout or "").strip().splitlines()[-4:]
    except subprocess.TimeoutExpired:
        returncode = -1
        tail = [f"timed out after {timeout:.0f}s"]
    seconds = time.perf_counter() - start
    return {
        "status": "passed" if returncode == 0 else "failed",
        "returncode": returncode,
        "seconds": round(seconds, 2),
        "tail": tail,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true",
                        help="keep pytest-benchmark's calibrated timing loops")
    parser.add_argument("--out", default=str(BENCH_DIR / "BENCH_api.json"),
                        help="consolidated output path")
    parser.add_argument("--timeout", type=float, default=900.0,
                        help="per-file timeout in seconds")
    parser.add_argument("--only", default=None,
                        help="substring filter on bench file names")
    parser.add_argument("--compare", metavar="BASELINE", default=None,
                        help="diff wall-clock against a recorded baseline and "
                             "exit nonzero on regressions")
    parser.add_argument("--slowdown-factor", type=float, default=2.0,
                        help="failure threshold for --compare (default 2x)")
    args = parser.parse_args(argv)

    # Read the baseline up front: --compare may name the same file --out
    # rewrites below.
    baseline = load_baseline(Path(args.compare)) if args.compare else None

    files = sorted(BENCH_DIR.glob("bench_*.py"))
    if args.only:
        files = [path for path in files if args.only in path.name]
    if not files:
        print("no bench_*.py files found", file=sys.stderr)
        return 2

    results: dict[str, dict] = {}
    for path in files:
        print(f"[run_all] {path.name} ...", flush=True)
        results[path.name] = run_one(path, full=args.full, timeout=args.timeout)
        entry = results[path.name]
        print(f"[run_all]   {entry['status']} in {entry['seconds']}s", flush=True)

    failed = [name for name, entry in results.items() if entry["status"] != "passed"]
    document = {
        "format": "repro.bench",
        "version": 1,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "mode": "full" if args.full else "quick",
        "summary": {
            "total": len(results),
            "passed": len(results) - len(failed),
            "failed": len(failed),
            "seconds": round(sum(e["seconds"] for e in results.values()), 2),
        },
        "results": results,
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    print(f"[run_all] wrote {out_path} "
          f"({document['summary']['passed']}/{document['summary']['total']} passed)")
    regressions: list[str] = []
    if baseline is not None:
        regressions = compare_against_baseline(
            results, baseline, args.slowdown_factor
        )
    return 1 if (failed or regressions) else 0


if __name__ == "__main__":
    raise SystemExit(main())
