"""Benchmark-suite configuration.

Makes the in-repo ``benchmarks`` directory importable as a package root
(so bench modules can ``import workloads``) and registers a session-wide
results collector that prints each experiment's observation rows at the
end of the run — the "same rows/series" record that EXPERIMENTS.md
snapshots.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

_OBSERVATIONS: list[str] = []


def record(experiment: str, row: str) -> None:
    """Collect one observation row for the end-of-run report."""
    _OBSERVATIONS.append(f"[{experiment}] {row}")


@pytest.fixture
def observe():
    return record


def pytest_terminal_summary(terminalreporter):
    if _OBSERVATIONS:
        terminalreporter.write_sep("=", "experiment observations")
        for line in _OBSERVATIONS:
            terminalreporter.write_line(line)
