"""K1 — the array-backed CompiledDAG kernel vs the seed dict path.

Claims measured (and asserted, so regressions fail the suite):

* K1a: count + sample on a 200-state random NFA at n = 100 is faster
  through the integer-indexed kernel than through the seed
  frozenset/dict walk it replaced (tables built per-state dicts and the
  sampler re-walked ``ordered_successors`` per step).
* K1b: ``sample_batch(1000)`` beats 1000 single ``sample()`` calls on
  the same prebuilt sampler — the batched layer-by-layer pass amortizes
  the per-vertex lookups.
* K1c: the kernel path agrees exactly with the seed path (counts and
  distributions are the same chain) across the application reductions —
  DNF, RPQ and CFG witness sets give identical exact counts through the
  registry.
* K1d: the NumPy kernel backend is ≥ 10x faster than the pure path on a
  large count + 1000-sample-burst workload, with byte-identical seeded
  samples (skipped when NumPy is not installed).

The seed implementations are inlined below (verbatim logic from the
pre-kernel tree) so the comparison stays honest as the library moves on.
"""

from __future__ import annotations

import time

import pytest

from repro.api import WitnessSet
from repro.automata.nfa import NFA
from repro.automata.random_gen import random_ufa
from repro.core import accel
from repro.core.exact_sampler import ExactUniformSampler
from repro.core.kernel import compile_nfa
from repro.core.unroll import UnrolledDAG, unroll_trimmed
from repro.utils.rng import make_rng

M = 200          # automaton states (the ISSUE-2 acceptance instance)
N = 100          # witness length
SAMPLES = 500    # single-draw count inside the count+sample workload
BATCH = 1000     # batched-draw comparison size
SEED = 20190621


def _instance():
    return random_ufa(M, rng=SEED, completeness=0.95, ensure_nonempty_length=N)


# ----------------------------------------------------------------------
# The seed dict path, inlined verbatim from the pre-kernel tree
# ----------------------------------------------------------------------


def seed_backward_table(dag: UnrolledDAG) -> list[dict]:
    nfa = dag.nfa
    table: list[dict] = [dict() for _ in range(dag.n + 1)]
    table[dag.n] = {state: 1 for state in dag.layer(dag.n) & nfa.finals}
    for t in range(dag.n - 1, -1, -1):
        current: dict = {}
        for state in dag.layer(t):
            total = 0
            for _, target in dag.successors(t, state):
                total += table[t + 1].get(target, 0)
            if total:
                current[state] = total
        table[t] = current
    return table


def seed_sample(dag: UnrolledDAG, back: list[dict], generator) -> tuple:
    state = dag.nfa.initial
    symbols: list = []
    for t in range(dag.n):
        choices: list[tuple] = []
        for symbol, target in dag.ordered_successors(t, state):
            weight = back[t + 1].get(target, 0)
            if weight:
                choices.append((symbol, target, weight))
        total = back[t][state]
        pick = generator.randrange(total)
        accumulated = 0
        for symbol, target, weight in choices:
            accumulated += weight
            if pick < accumulated:
                symbols.append(symbol)
                state = target
                break
    return tuple(symbols)


def seed_count_and_sample(nfa) -> tuple[int, float]:
    started = time.perf_counter()
    dag = unroll_trimmed(nfa, N)
    back = seed_backward_table(dag)
    count = sum(back[0].get(state, 0) for state in dag.layer(0))
    generator = make_rng(7)
    for _ in range(SAMPLES):
        seed_sample(dag, back, generator)
    return count, time.perf_counter() - started


def kernel_count_and_sample(nfa) -> tuple[int, float]:
    started = time.perf_counter()
    kernel = compile_nfa(nfa, N, trimmed=True)
    count = kernel.total_runs
    generator = make_rng(7)
    for _ in range(SAMPLES):
        kernel.sample_word(generator)
    return count, time.perf_counter() - started


def _best_of(runs: int, workload, *args):
    result = None
    best = float("inf")
    for _ in range(runs):
        result, seconds = workload(*args)
        best = min(best, seconds)
    return result, best


def test_count_sample_kernel_beats_seed_dict_path(observe):
    nfa = _instance()
    seed_count, seed_seconds = _best_of(3, seed_count_and_sample, nfa)
    kernel_count, kernel_seconds = _best_of(3, kernel_count_and_sample, nfa)
    assert kernel_count == seed_count
    speedup = seed_seconds / kernel_seconds
    observe(
        "K1a",
        f"m={M} n={N} count+{SAMPLES} samples: seed={seed_seconds:.3f}s "
        f"kernel={kernel_seconds:.3f}s speedup={speedup:.2f}x",
    )
    assert kernel_seconds < seed_seconds, (
        f"kernel path ({kernel_seconds:.3f}s) must beat the seed dict path "
        f"({seed_seconds:.3f}s)"
    )


def test_sample_batch_beats_single_draws(observe):
    sampler = ExactUniformSampler(_instance(), N, check=False)
    sampler.sample_batch(8, make_rng(0))  # warm the per-vertex weight caches

    generator = make_rng(11)
    started = time.perf_counter()
    singles = [sampler.sample(generator) for _ in range(BATCH)]
    single_seconds = time.perf_counter() - started

    generator = make_rng(11)
    started = time.perf_counter()
    batch = sampler.sample_batch(BATCH, generator)
    batch_seconds = time.perf_counter() - started

    assert len(batch) == len(singles) == BATCH
    assert len(batch[0]) == N
    speedup = single_seconds / batch_seconds
    observe(
        "K1b",
        f"{BATCH} draws at n={N}: singles={single_seconds:.3f}s "
        f"batch={batch_seconds:.3f}s speedup={speedup:.2f}x",
    )
    assert batch_seconds < single_seconds, (
        f"sample_batch ({batch_seconds:.3f}s) must beat {BATCH} single draws "
        f"({single_seconds:.3f}s)"
    )


# ----------------------------------------------------------------------
# K1d — the NumPy backend vs the pure path (ISSUE-8 acceptance gate)
# ----------------------------------------------------------------------

# A "trapdoor" rolling-hash DFA sized so the count-table sweeps carry
# real vector width (~3000-state layers, out-degree 512, ~10.5M DAG
# edges) while the witness count stays packed (32 live symbols per
# state → 32^9 ≈ 2^46 words, far below the int64 spill point).  The
# dead mirror keeps every layer's CSR block full without inflating the
# count: 480 of the 512 edges per live state carry weight 0.
ACCEL_N = 9          # witness length (layers)
ACCEL_M = 1543       # rolling-hash modulus (prime)
ACCEL_SYMS = 512     # alphabet size = out-degree of every state
ACCEL_LIVE = 32      # live (non-trapdoor) symbols per state
ACCEL_MULT = 769     # mixing multiplier (fills layers within 2 steps)
ACCEL_MIN_SPEEDUP = 10.0


def _trapdoor_dfa() -> NFA:
    """Complete DFA: states are (hash, alive); dead states never accept."""
    transitions = []
    for c in range(ACCEL_M):
        alive, dead = c * 2 + 1, c * 2
        for i in range(ACCEL_SYMS):
            target = (ACCEL_MULT * c + i) % ACCEL_M
            transitions.append((dead, i, target * 2))
            trapdoor = (c + i) % (ACCEL_SYMS // ACCEL_LIVE) != 3
            transitions.append((alive, i, target * 2 if trapdoor else target * 2 + 1))
    return NFA(
        states=set(range(2 * ACCEL_M)),
        alphabet=set(range(ACCEL_SYMS)),
        transitions=set(transitions),
        initial=1,
        finals=set(range(1, 2 * ACCEL_M, 2)),
    )


def _reset_kernel_caches(kernel) -> None:
    """Drop every derived table so the next workload is a cold build."""
    kernel._forward = None
    kernel._backward = None
    kernel._cum.clear()
    kernel._redge.clear()
    kernel._accel_state.clear()


def _count_and_burst(kernel) -> tuple:
    started = time.perf_counter()
    count = kernel.total_runs          # cold backward count-table build
    words = kernel.sample_batch(BATCH, make_rng(7))
    return (count, words), time.perf_counter() - started


def test_numpy_backend_speedup_over_pure(observe):
    """K1d: ≥ 10x on count + burst, samples byte-identical (gated)."""
    if accel.resolve("numpy") is None:
        pytest.skip("NumPy backend unavailable (pure-only environment)")
    kernel = compile_nfa(_trapdoor_dfa(), ACCEL_N, trimmed=False)
    results = {}
    seconds = {}
    for backend in ("pure", "numpy", "pure", "numpy"):
        kernel.set_kernel_backend(backend)
        _reset_kernel_caches(kernel)
        result, elapsed = _count_and_burst(kernel)
        results[backend] = result
        seconds[backend] = min(seconds.get(backend, float("inf")), elapsed)
    assert results["pure"][0] == results["numpy"][0] == 32**ACCEL_N
    assert results["pure"][1] == results["numpy"][1], (
        "seeded samples must be byte-identical between backends"
    )
    speedup = seconds["pure"] / seconds["numpy"]
    observe(
        "K1d",
        f"states/layer={2 * ACCEL_M} degree={ACCEL_SYMS} n={ACCEL_N} "
        f"count+{BATCH}-burst: pure={seconds['pure']:.3f}s "
        f"numpy={seconds['numpy']:.3f}s speedup={speedup:.2f}x",
    )
    assert speedup >= ACCEL_MIN_SPEEDUP, (
        f"NumPy backend speedup {speedup:.2f}x below the "
        f"{ACCEL_MIN_SPEEDUP:.0f}x acceptance gate"
    )


def test_kernel_agrees_across_reductions(observe):
    """K1c: identical exact counts through the registry on the app matrix."""
    from repro.grammars import CNFGrammar
    from repro.graphdb.graph import grid_graph

    cases = {
        "dnf": WitnessSet.from_dnf("x0 & !x2 | x1 & x3"),
        "rpq": WitnessSet.from_rpq(grid_graph(3, 3), "(r|d)*", (0, 0), (2, 2), 4),
        "cfg": WitnessSet.from_cfg(
            CNFGrammar(
                ["S", "A", "B", "T"],
                ["a", "b"],
                [("S", ("A", "T")), ("T", ("S", "B")), ("S", ("A", "B")),
                 ("A", ("a",)), ("B", ("b",))],
                "S",
            ),
            8,
        ),
    }
    for source, ws in cases.items():
        exact = ws.count(backend="exact")
        naive = ws.count(backend="naive")
        assert exact == naive, source
        observe("K1c", f"{source}: exact={exact} naive={naive} (agree)")
