"""E4a — FPRAS accuracy (Theorem 22): relative error within δ, prob ≥ 3/4.

For each instance family we run a small seed battery at δ = 0.3 and
record the error distribution against the exact subset-construction
count.  The FPRAS contract requires ≥ 3/4 of runs within δ; the observed
fraction (at our practical k = 64, far below the paper's (nm/δ)^64) is
the headline datapoint of EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.core.exact import count_words_exact
from repro.core.fpras import approx_count_nfa
from repro.utils.stats import relative_error, summarize_errors
from workloads import BENCH_FPRAS, blowup_sweep, pattern_instance

DELTA = 0.3
SEEDS = range(8)


@pytest.mark.parametrize("depth,nfa", blowup_sweep(), ids=lambda v: str(v) if isinstance(v, int) else "")
def test_fpras_accuracy_blowup(benchmark, observe, depth, nfa):
    n = 2 * depth
    exact = count_words_exact(nfa, n)

    def run():
        return approx_count_nfa(nfa, n, delta=DELTA, rng=7, params=BENCH_FPRAS)

    estimate = benchmark.pedantic(run, rounds=1, iterations=1)
    errors = [
        relative_error(
            approx_count_nfa(nfa, n, delta=DELTA, rng=seed, params=BENCH_FPRAS), exact
        )
        for seed in SEEDS
    ]
    summary = summarize_errors(errors, DELTA)
    observe(
        "E4",
        f"blowup depth={depth} n={n} exact={exact} sample-est={estimate:.1f} "
        f"median-err={summary.median:.3f} within-δ={summary.within_delta_fraction:.2f}",
    )
    assert summary.within_delta_fraction >= 0.75


def test_fpras_accuracy_pattern(benchmark, observe):
    nfa, n = pattern_instance()
    exact = count_words_exact(nfa, n)
    benchmark.pedantic(
        lambda: approx_count_nfa(nfa, n, delta=DELTA, rng=99, params=BENCH_FPRAS),
        rounds=1,
        iterations=1,
    )
    errors = [
        relative_error(
            approx_count_nfa(nfa, n, delta=DELTA, rng=seed, params=BENCH_FPRAS), exact
        )
        for seed in SEEDS
    ]
    summary = summarize_errors(errors, DELTA)
    observe(
        "E4",
        f"pattern Σ*101Σ* n={n} exact={exact} median-err={summary.median:.3f} "
        f"within-δ={summary.within_delta_fraction:.2f}",
    )
    assert summary.within_delta_fraction >= 0.75
