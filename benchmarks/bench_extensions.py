"""A3 — extension benchmarks: almost-uniform vs PLVUG, CFG counting, Brzozowski.

Not part of the paper's claim set; these quantify the extension modules'
documented trade-offs:

* the rejection-free almost-uniform generator's throughput advantage over
  the exactly uniform PLVUG (the e⁴ factor) and its total-variation cost;
* derivation counting/sampling cost for CFGs across n (the [GJK+97]
  substrate);
* the Brzozowski derivative DFA as an alternative regex compiler.
"""

from __future__ import annotations

import time

import pytest

from repro.automata.brzozowski import brzozowski_dfa
from repro.automata.operations import words_of_length
from repro.automata.random_gen import ambiguity_blowup
from repro.automata.regex import parse
from repro.core.almost_uniform import AlmostUniformGenerator, total_variation_from_uniform
from repro.core.fpras import FprasParameters
from repro.core.plvug import LasVegasUniformGenerator
from repro.grammars.cfg import CNFGrammar, count_derivations, derivation_sampler

FAST = FprasParameters(sample_size=48)


def test_almost_uniform_vs_plvug(benchmark, observe):
    nfa = ambiguity_blowup(6)
    n = 12
    support = words_of_length(nfa, n)
    draws = len(support) * 30

    almost = AlmostUniformGenerator(nfa, n, delta=0.3, rng=1, params=FAST)
    start = time.perf_counter()
    almost_samples = almost.sample_many(draws)
    almost_time = time.perf_counter() - start

    plvug = LasVegasUniformGenerator(nfa, n, delta=0.3, rng=1, params=FAST)
    start = time.perf_counter()
    plvug_samples = plvug.sample_many(draws)
    plvug_time = time.perf_counter() - start

    benchmark(almost.generate)
    observe(
        "A3",
        f"{draws} draws: almost-uniform {almost_time:5.2f}s "
        f"(TV={total_variation_from_uniform(almost_samples, support):.3f}) vs "
        f"PLVUG {plvug_time:5.2f}s "
        f"(TV={total_variation_from_uniform(plvug_samples, support):.3f}) — "
        f"throughput ×{plvug_time / max(almost_time, 1e-9):.1f}",
    )


@pytest.mark.parametrize("n", [16, 32, 64])
def test_cfg_counting_cost(benchmark, observe, n):
    dyck = CNFGrammar(
        nonterminals=["S", "A", "B"],
        terminals=["a", "b"],
        rules=[("S", ("S", "S")), ("S", ("A", "B")), ("A", ("a",)), ("B", ("b",))],
        start="S",
    )
    counts = benchmark(count_derivations, dyck, n)
    sampler = derivation_sampler(dyck, n, counts=counts)
    if sampler.total:
        w = sampler.sample_word(1)
        assert dyck.recognizes(w)
    observe("A3", f"CFG DP at n={n}: T(S,{n})={counts[('S', n)]}")


def test_brzozowski_compile(benchmark, observe):
    ast = parse("(a|b)*a(a|b){4}")
    automaton = benchmark(brzozowski_dfa, ast, "ab")
    observe(
        "A3",
        f"Brzozowski DFA of (a|b)*a(a|b){{4}}: {automaton.num_states} states "
        f"(deterministic → RelationUL exact suite applies)",
    )
    assert automaton.is_deterministic()
