"""E3 — exact counting for UFAs in polynomial time (§5.3.2).

Claim: |L_n(N)| for unambiguous N is computable in O(n·|δ|) bignum steps.
The sweep shows near-linear runtime growth in m at fixed n, and exact
agreement with brute force is enforced at a small size.
"""

from __future__ import annotations

import pytest

from repro.baselines.naive import brute_force_count
from repro.core.exact import count_accepting_runs_of_length
from workloads import ufa_sweep

N = 64


@pytest.mark.parametrize("m,ufa", ufa_sweep(), ids=lambda v: str(v) if isinstance(v, int) else "")
def test_exact_count_ufa(benchmark, observe, m, ufa):
    count = benchmark(count_accepting_runs_of_length, ufa, N)
    observe("E3", f"m={m:<4} n={N} |L_n|={count}")
    assert count >= 0


def test_exact_count_agrees_with_brute_force(benchmark, observe):
    m, ufa = ufa_sweep(sizes=(10,))[0]
    fast = benchmark(count_accepting_runs_of_length, ufa, 10)
    slow = brute_force_count(ufa, 10)
    observe("E3", f"ground-truth check at m={m}, n=10: DP={fast} brute={slow}")
    assert fast == slow
