"""E11 — regular path queries (Corollary 8): count & sample paths.

Grid graphs give closed-form ground truth (binomial coefficients); the
social-style graph exercises combined complexity with a star query.
"""

from __future__ import annotations

import math

import pytest

from repro.api import WitnessSet
from repro.graphdb.graph import grid_graph, social_graph
from repro.graphdb.rpq import RPQ, RpqEvaluator
from workloads import SEED


@pytest.mark.parametrize("side", [4, 6, 8])
def test_rpq_grid_counts(benchmark, observe, side):
    g = grid_graph(side, side)
    n = 2 * (side - 1)

    def evaluate():
        ws = WitnessSet.from_rpq(g, "(r|d)*", (0, 0), (side - 1, side - 1), n)
        return ws, ws.count()

    ws, count = benchmark.pedantic(evaluate, rounds=2, iterations=1)
    expected = math.comb(n, side - 1)
    observe("E11", f"grid {side}x{side} paths={count} (closed form C({n},{side-1})={expected})")
    assert count == expected


def test_rpq_grid_sampling(benchmark, observe):
    side = 6
    g = grid_graph(side, side)
    n = 2 * (side - 1)
    ws = WitnessSet.from_rpq(g, "(r|d)*", (0, 0), (side - 1, side - 1), n)
    benchmark(ws.sample, rng=0)
    paths = [ws.sample(rng=seed) for seed in range(20)]
    assert all(p.is_path_of(g) for p in paths)
    observe("E11", f"grid sampling: 20/20 sampled paths valid, e.g. {''.join(paths[0].label_word)}")


def test_rpq_social_star_query(benchmark, observe):
    g = social_graph(30, rng=SEED)
    people = sorted(g.vertices)
    source, target = people[0], people[1]

    def evaluate():
        evaluator = RpqEvaluator(g, RPQ("k(k|f)*k"), source, target, 5, rng=4)
        return evaluator, evaluator.count()

    (evaluator, count) = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    exact = evaluator.count_exact()
    observe(
        "E11",
        f"social |V|=30 query=k(k|f)*k n=5: count={count:.1f} exact={exact} "
        f"unambiguous={evaluator.unambiguous}",
    )
    if exact:
        assert abs(count - exact) <= 0.5 * exact
