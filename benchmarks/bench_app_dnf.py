"""E13 — SAT-DNF: the generic pipeline vs Karp–Luby ([KL83]).

Both are FPRASes for #DNF; the point is parity of *guarantee*, not speed
(Karp–Luby is specialized and wins on constants).  Recorded: error and
runtime of each on shared formulas.
"""

from __future__ import annotations

import time

import pytest

from repro.api import WitnessSet
from repro.baselines.karp_luby import karp_luby_count
from repro.dnf.formulas import random_dnf
from repro.utils.stats import relative_error
from workloads import BENCH_FPRAS, SEED


@pytest.mark.parametrize("num_vars,num_terms,width", [(10, 5, 3), (12, 6, 4)])
def test_dnf_generic_vs_karp_luby(benchmark, observe, num_vars, num_terms, width):
    phi = random_dnf(num_vars, num_terms, width, rng=SEED)
    exact = phi.count_models_brute()
    # Both strategies are selected by name from the solver-backend
    # registry, against one shared compiled WitnessSet.
    ws = WitnessSet.from_dnf(phi, params=BENCH_FPRAS)

    def generic():
        return ws.count(backend="fpras", delta=0.3, rng=1)

    start = time.perf_counter()
    generic_estimate = benchmark.pedantic(generic, rounds=1, iterations=1)
    generic_time = time.perf_counter() - start

    start = time.perf_counter()
    kl_estimate = ws.count(backend="karp_luby", delta=0.1, rng=1)
    kl_time = time.perf_counter() - start

    observe(
        "E13",
        f"vars={num_vars} terms={num_terms} exact={exact}: "
        f"generic err={relative_error(generic_estimate, exact):5.3f} ({generic_time:5.2f}s) | "
        f"karp-luby err={relative_error(kl_estimate, exact):5.3f} ({kl_time:5.2f}s)",
    )
    assert relative_error(generic_estimate, exact) <= 0.4
    assert relative_error(kl_estimate, exact) <= 0.3


def test_karp_luby_throughput(benchmark, observe):
    phi = random_dnf(20, 10, 4, rng=SEED)
    estimate = benchmark(karp_luby_count, phi, 0.1, 0.05, 7)
    observe("E13", f"karp-luby at 20 vars / 10 terms: estimate={estimate:.0f}")
    assert estimate > 0
