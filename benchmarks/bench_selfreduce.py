"""E14 — self-reducibility (§5.2): ψ invariants and the ψ-chain sampler.

Records: ψ construction cost across the sweep, the size boundedness our
corrected construction guarantees, and the runtime gap between the
ψ-chain reference sampler and the DP sampler (both exactly uniform).
"""

from __future__ import annotations

import time

import pytest

from repro.automata.operations import words_of_length
from repro.core.exact_sampler import ExactUniformSampler, sample_word_ufa_via_psi
from repro.core.selfreduce import SelfReduction, psi
from workloads import nfa_sweep, ufa_sweep


@pytest.mark.parametrize("m,nfa", nfa_sweep(), ids=lambda v: str(v) if isinstance(v, int) else "")
def test_psi_construction_cost(benchmark, observe, m, nfa):
    symbol = sorted(nfa.alphabet, key=repr)[0]
    reduced, _ = benchmark(psi, nfa, 8, symbol)
    observe(
        "E14",
        f"m={m:<4} ψ: {nfa.num_states}→{reduced.num_states} states, "
        f"{nfa.num_transitions}→{reduced.num_transitions} transitions",
    )
    assert reduced.num_states <= nfa.num_states + 1


def test_psi_chain_vs_dp_sampler(benchmark, observe):
    m, ufa = ufa_sweep(sizes=(20,))[0]
    n = 10

    benchmark(sample_word_ufa_via_psi, ufa, n, 0, False)
    start = time.perf_counter()
    dp_sampler = ExactUniformSampler(ufa, n, check=False)
    dp_samples = dp_sampler.sample_many(20, rng=5)
    dp_time = time.perf_counter() - start

    start = time.perf_counter()
    psi_samples = [sample_word_ufa_via_psi(ufa, n, rng=seed, check=False) for seed in range(20)]
    psi_time = time.perf_counter() - start

    support = set(words_of_length(ufa, n))
    assert all(w in support for w in dp_samples)
    assert all(w in support for w in psi_samples)
    observe(
        "E14",
        f"20 samples at m={m}, n={n}: DP-sampler {dp_time:5.3f}s vs "
        f"ψ-chain {psi_time:5.3f}s (×{psi_time / max(dp_time, 1e-9):.0f} slower, same distribution)",
    )


def test_psi_descend_invariant(benchmark, observe):
    m, ufa = ufa_sweep(sizes=(10,))[0]
    witness = next(iter(words_of_length(ufa, 6)))
    chain = benchmark(SelfReduction(ufa, 6).descend, witness)
    assert chain.k == 0
    observe("E14", f"ψ-descent along a witness reaches k=0 with ε accepted: ok")
