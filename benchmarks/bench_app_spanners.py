"""E10 — document spanners (Corollaries 6–7): entity extraction at scale.

An extraction eVA over synthetic documents: counting mappings, constant-
delay enumeration for the unambiguous case, and uniform mapping sampling.
"""

from __future__ import annotations

import random

import pytest

from repro.spanners.eva import extraction_eva
from repro.spanners.evaluation import SpannerEvaluator
from workloads import SEED


def synthetic_document(length: int) -> str:
    generator = random.Random(SEED + length)
    return "".join(generator.choice("abcd") for _ in range(length))


@pytest.fixture(scope="module")
def eva():
    return extraction_eva("ab", "X", content_symbols="cd", alphabet="abcd")


@pytest.mark.parametrize("doc_len", [20, 40, 80])
def test_spanner_count(benchmark, observe, eva, doc_len):
    document = synthetic_document(doc_len)

    def build_and_count():
        return SpannerEvaluator(eva, document, rng=1)

    evaluator = benchmark.pedantic(build_and_count, rounds=2, iterations=1)
    count = evaluator.count_exact()
    observe(
        "E10",
        f"doc-len={doc_len:<4} mappings={count:<5} unambiguous={evaluator.unambiguous}",
    )
    assert count == len(list(evaluator.mappings()))


def test_spanner_enumeration_and_sampling(benchmark, observe, eva):
    document = synthetic_document(60)
    evaluator = SpannerEvaluator(eva, document, rng=2)
    mappings = benchmark(lambda: list(evaluator.mappings()))
    if not mappings:
        pytest.skip("document draw contains no matches")
    sample = evaluator.sample(3)
    observe(
        "E10",
        f"doc-len=60 mappings={len(mappings)} sampled-span={sample['X']!r} "
        f"content={sample.contents(document)['X']!r}",
    )
    assert sample in set(mappings)
