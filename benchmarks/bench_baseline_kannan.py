"""E6 — the KSM95-style comparator's quasi-polynomial cost.

The previous best approximation scheme needs an n^{O(log n)} sample
schedule to hold its error across ambiguity regimes; the recorded series
shows the schedule (and hence runtime) growing super-polynomially in n
while the FPRAS leg grows polynomially — the separation that makes
Theorem 22 the headline.
"""

from __future__ import annotations

import time

import pytest

from repro.automata.random_gen import ambiguity_blowup
from repro.baselines.kannan import kannan_style_count, ksm_sample_schedule
from repro.core.exact import count_words_exact
from repro.core.fpras import approx_count_nfa
from repro.utils.stats import relative_error
from workloads import BENCH_FPRAS


@pytest.mark.parametrize("depth", [3, 5, 7, 9])
def test_kannan_runtime_growth(benchmark, observe, depth):
    nfa = ambiguity_blowup(depth)
    n = 2 * depth
    exact = count_words_exact(nfa, n)
    schedule = ksm_sample_schedule(n, 0.3)

    def run():
        return kannan_style_count(nfa, n, delta=0.3, rng=5)

    start = time.perf_counter()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    ksm_time = time.perf_counter() - start

    start = time.perf_counter()
    fpras_estimate = approx_count_nfa(nfa, n, delta=0.3, rng=5, params=BENCH_FPRAS)
    fpras_time = time.perf_counter() - start

    observe(
        "E6",
        f"n={n:<3} KSM-schedule={schedule:<7} KSM-time={ksm_time:6.2f}s "
        f"err={relative_error(result.estimate, exact):5.3f} | "
        f"FPRAS-time={fpras_time:6.2f}s err={relative_error(fpras_estimate, exact):5.3f}",
    )
    assert result.samples == schedule or result.samples <= schedule
