"""E4b — FPRAS runtime scaling (Theorem 22): polynomial in n, m, 1/δ.

Sweeps each of the three parameters with the others fixed; the recorded
series should grow polynomially (the log-log slope stays bounded),
in contrast to E6's quasi-polynomial comparator.
"""

from __future__ import annotations

import time

import pytest

from repro.automata.random_gen import ambiguity_blowup
from repro.core.fpras import FprasParameters, FprasState
from workloads import SEED
from repro.automata.random_gen import random_nfa

PARAMS = FprasParameters(sample_size=48)


@pytest.mark.parametrize("depth", [4, 6, 8, 10])
def test_scaling_in_n(benchmark, observe, depth):
    nfa = ambiguity_blowup(depth)
    n = 2 * depth

    def run():
        return FprasState(nfa, n, delta=0.3, rng=1, params=PARAMS).count_estimate

    start = time.perf_counter()
    estimate = benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    observe("E4", f"scaling-in-n: depth={depth} n={n} time={elapsed:6.2f}s est={estimate:.0f}")


@pytest.mark.parametrize("m", [6, 10, 14])
def test_scaling_in_m(benchmark, observe, m):
    nfa = random_nfa(m, rng=SEED + m, density=1.8, ensure_nonempty_length=10)

    def run():
        return FprasState(nfa, 10, delta=0.3, rng=1, params=PARAMS).count_estimate

    start = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    observe("E4", f"scaling-in-m: m={m} n=10 time={elapsed:6.2f}s")


@pytest.mark.parametrize("k", [16, 32, 64])
def test_scaling_in_k(benchmark, observe, k):
    """1/δ enters through k; sweeping k directly isolates that axis."""
    nfa = ambiguity_blowup(6)

    def run():
        return FprasState(
            nfa, 12, delta=0.3, rng=1, params=FprasParameters(sample_size=k)
        ).count_estimate

    start = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    observe("E4", f"scaling-in-k: k={k} time={elapsed:6.2f}s")
