"""E-API — the WitnessSet facade's cache removes per-call recompilation.

The pre-facade top-level helpers re-ran ``without_epsilon().trim()``,
the ambiguity check, and the unroll/count-table preprocessing on every
call, so a count followed by a sample on the same language paid the
expensive work twice.  Recorded here:

* cold (a fresh facade per query — the old behaviour) vs warm (one
  facade, cached artifacts) cost of the count+sample+enum triple;
* the deprecated free functions now hitting the shared process cache,
  so even legacy call sites amortize.
"""

from __future__ import annotations

import time
import warnings

import repro
from repro.api import WitnessSet, shared, shared_cache_clear
from workloads import ufa_sweep

N = 64
QUERY_ROUNDS = 30


def _query_triple(ws: WitnessSet) -> None:
    ws.count()
    ws.sample(1, rng=0)
    next(iter(ws.words()))


def test_facade_cache_speedup(observe):
    m, ufa = ufa_sweep(sizes=(80,))[0]

    # COUNT: warm calls are O(1) dict lookups vs the full preprocessing.
    cold_rounds = 5
    start = time.perf_counter()
    for _ in range(cold_rounds):
        WitnessSet.from_nfa(ufa, N).count()
    cold_count = (time.perf_counter() - start) / cold_rounds

    ws = WitnessSet.from_nfa(ufa, N)
    ws.count()  # prime
    start = time.perf_counter()
    for _ in range(QUERY_ROUNDS):
        ws.count()
    warm_count = (time.perf_counter() - start) / QUERY_ROUNDS

    # The mixed triple still pays the (inherent) per-draw sampling walk,
    # but none of the preprocessing.
    start = time.perf_counter()
    for _ in range(cold_rounds):
        _query_triple(WitnessSet.from_nfa(ufa, N))
    cold_triple = (time.perf_counter() - start) / cold_rounds
    _query_triple(ws)
    start = time.perf_counter()
    for _ in range(QUERY_ROUNDS):
        _query_triple(ws)
    warm_triple = (time.perf_counter() - start) / QUERY_ROUNDS

    observe(
        "E-API",
        f"m={m} n={N} count: cold={cold_count * 1e3:7.2f}ms "
        f"warm={warm_count * 1e6:7.1f}µs ({cold_count / warm_count:8.0f}x) | "
        f"count+sample+enum: cold={cold_triple * 1e3:7.2f}ms "
        f"warm={warm_triple * 1e3:7.2f}ms ({cold_triple / warm_triple:5.1f}x)",
    )
    # Counting on a warm facade must be orders of magnitude cheaper than
    # re-preprocessing (conservative bound; typically ≫ 100x) ...
    assert warm_count < cold_count / 10
    # ... the mixed workload must still amortize all shared state ...
    assert warm_triple < cold_triple
    # ... and no artifact is ever built twice.
    assert all(count == 1 for count in ws.stats.misses.values())


def test_legacy_helpers_hit_shared_cache(observe):
    m, ufa = ufa_sweep(sizes=(40,))[0]
    shared_cache_clear()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        start = time.perf_counter()
        first = repro.count_words(ufa, N)
        cold = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(QUERY_ROUNDS):
            assert repro.count_words(ufa, N) == first
            repro.uniform_sample(ufa, N, rng=1)
        warm = (time.perf_counter() - start) / QUERY_ROUNDS

    ws = shared(ufa, N)
    observe(
        "E-API",
        f"legacy shims m={m} n={N}: first-call={cold * 1e3:7.2f}ms "
        f"steady-state={warm * 1e3:7.2f}ms hits={ws.stats.hit_count}",
    )
    # Steady-state count+sample through the shims must beat one cold
    # preprocessing pass — i.e. the shared cache is actually shared.
    assert warm < cold
    assert ws.stats.hit_count > 0
