"""E8 — the Las Vegas uniform generator for NFAs (Corollary 23).

Claims: per-attempt acceptance bounded below (≈ e⁻⁴ at the design point,
≥ e⁻⁵ worst case), per-call failure < 1/2, and exactly uniform output
conditioned on success.  All three are recorded.
"""

from __future__ import annotations

import math

import pytest

from repro.automata.operations import words_of_length
from repro.automata.random_gen import ambiguity_blowup
from repro.core.plvug import PAPER_MIN_ATTEMPTS_PER_CALL, LasVegasUniformGenerator
from repro.utils.stats import chi_square_uniformity
from workloads import BENCH_FPRAS

DEPTH = 7
N = 2 * DEPTH


@pytest.fixture(scope="module")
def generator():
    return LasVegasUniformGenerator(
        ambiguity_blowup(DEPTH), N, delta=0.3, rng=5, params=BENCH_FPRAS
    )


def test_plvug_throughput(benchmark, generator, observe):
    w = benchmark(generator.generate)
    assert w is not None


def test_plvug_acceptance_rate(benchmark, generator, observe):
    rate = benchmark.pedantic(generator.empirical_acceptance_rate, kwargs={"trials": 500}, rounds=1, iterations=1)
    single_fail = 1 - rate
    batched_fail = single_fail**PAPER_MIN_ATTEMPTS_PER_CALL
    observe(
        "E8",
        f"acceptance-rate={rate:.4f} (design point e^-4={math.exp(-4):.4f}); "
        f"per-call failure at the 103-attempt contract budget: {batched_fail:.2e} (< 1/2)",
    )
    assert batched_fail < 0.5


def test_plvug_uniformity(benchmark, generator, observe):
    support = words_of_length(ambiguity_blowup(DEPTH), N)
    samples = benchmark.pedantic(generator.sample_many, args=(len(support) * 12,), rounds=1, iterations=1)
    result = chi_square_uniformity(samples, support)
    observe(
        "E8",
        f"uniformity: support={len(support)} draws={len(samples)} "
        f"chi2={result.statistic:.1f} p={result.p_value:.3f}",
    )
    assert not result.rejects_uniformity(alpha=1e-4)
