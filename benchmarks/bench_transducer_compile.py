"""E9 — Lemma 13: transducer → NFA compilation is polynomial and exact.

Sweeps the SAT-DNF transducer of §3 over growing formulas: the compiled
automaton's size must grow polynomially with the input (here linearly in
terms × variables), and its language must equal the direct semantics.
"""

from __future__ import annotations

import pytest

from repro.core.exact import count_words_exact
from repro.core.transducers import CompilationReport, compile_to_nfa
from repro.dnf.formulas import random_dnf
from repro.dnf.relation import dnf_transducer
from workloads import SEED


@pytest.mark.parametrize("num_vars,num_terms", [(8, 4), (16, 8), (32, 16), (64, 32)])
def test_lemma13_compilation(benchmark, observe, num_vars, num_terms):
    phi = random_dnf(num_vars, num_terms, 3, rng=SEED)
    transducer = dnf_transducer()
    report = CompilationReport()

    def build():
        return compile_to_nfa(transducer, phi, report=report)

    nfa = benchmark(build)
    observe(
        "E9",
        f"vars={num_vars:<3} terms={num_terms:<3} configs={report.configurations:<6} "
        f"nfa-states={nfa.num_states:<6} nfa-transitions={nfa.num_transitions}",
    )
    # Size must stay polynomial (here linear) in the input measure.
    assert report.configurations <= 2 + num_terms * (num_vars + 2)


def test_lemma13_witness_preservation(benchmark, observe):
    phi = random_dnf(10, 5, 3, rng=SEED)
    nfa = benchmark(compile_to_nfa, dnf_transducer(), phi)
    compiled_count = count_words_exact(nfa, 10)
    direct_count = phi.count_models_brute()
    observe("E9", f"witness preservation: compiled={compiled_count} direct={direct_count}")
    assert compiled_count == direct_count
