"""S2 — observability overhead: the instrumented serving stack must
cost < 2% wall-clock on the gated service benches (ISSUE-9 acceptance).

The workload is the S1e shape from :mod:`bench_service` — 8 parallel
clients, 15 single-sample requests each, one hot spec coalesced by the
async server — because that is the bench the overhead gate protects.
The comparison toggles :func:`repro.obs.set_enabled` (the in-process
switch behind ``REPRO_OBS=off``) between rounds, alternating on/off so
page-cache and frequency-scaling drift land on both sides equally, and
takes min-of-N per side before comparing:

* S2a: ``min(instrumented) <= min(disabled) * 1.02 + epsilon`` — the
  kill-switch path and the enabled path are indistinguishable within
  the gate.  The epsilon absorbs timer quantization on sub-second
  rounds; the multiplicative 2% is the real budget.
* S2b: the instrumented rounds actually instrumented — the request
  counter and latency histogram grew by the round's request count
  (a guard against "zero overhead because nothing was recorded").
"""

from __future__ import annotations

import json
import threading
import time

from repro import obs
from repro.automata.random_gen import random_ufa
from repro.automata.serialization import nfa_to_json
from repro.obs import names as metric_names
from repro.service import Engine, ServiceClient
from repro.service.server import start_tcp_server_thread

SEED = 20190621
CLIENTS = 8
REQUESTS_PER_CLIENT = 15
ROUNDS_PER_SIDE = 3

#: The acceptance budget: instrumented ≤ 2% over the kill-switch path.
MAX_OVERHEAD_FACTOR = 1.02
#: Absolute slack for timer quantization on sub-second rounds (seconds).
EPSILON_SECONDS = 0.015


def _spec() -> dict:
    nfa = random_ufa(80, rng=SEED + 10, completeness=0.95,
                     ensure_nonempty_length=60)
    return {"kind": "nfa", "nfa": json.loads(nfa_to_json(nfa)), "n": 60}


def _burst(client_index: int) -> list[tuple[str, int]]:
    return [("sample", client_index * 1000 + i)
            for i in range(REQUESTS_PER_CLIENT)]


def _run_round(host: str, port: int, spec: dict) -> tuple[float, list]:
    """One S1e-shaped round: CLIENTS parallel connections, wall-clock."""
    results: list = [None] * CLIENTS
    barrier = threading.Barrier(CLIENTS)

    def client_main(index: int) -> None:
        with ServiceClient(host, port, timeout=60) as client:
            barrier.wait(timeout=10)
            rows = []
            for op, seed in _burst(index):
                rows.append(client.result(op, spec, k=1, seed=seed))
            results[index] = rows

    threads = [threading.Thread(target=client_main, args=(index,))
               for index in range(CLIENTS)]
    started = time.perf_counter()
    for worker in threads:
        worker.start()
    for worker in threads:
        worker.join(timeout=120)
    seconds = time.perf_counter() - started
    return seconds, [row for rows in results for row in rows]


def _request_series_total(snapshot: dict) -> int:
    return sum(
        value
        for key, value in snapshot.get("counters", {}).items()
        if key.startswith(metric_names.SERVER_REQUESTS)
    )


def test_observability_overhead_under_two_percent(observe):
    spec = _spec()
    engine = Engine(workers=0)
    thread, (host, port) = start_tcp_server_thread(engine)
    was_enabled = obs.enabled()
    try:
        with ServiceClient(host, port, timeout=60) as warm:
            warm.request("count", spec)  # compile once before timing
        _run_round(host, port, spec)  # warm the socket/coalescing path

        per_round = CLIENTS * REQUESTS_PER_CLIENT
        seconds = {True: float("inf"), False: float("inf")}
        reference: list | None = None
        recorded_deltas: list[int] = []
        for _ in range(ROUNDS_PER_SIDE):
            for instrumented in (True, False):  # alternate: drift is fair
                obs.set_enabled(instrumented)
                before = _request_series_total(obs.metrics().snapshot())
                round_seconds, results = _run_round(host, port, spec)
                seconds[instrumented] = min(seconds[instrumented], round_seconds)
                if reference is None:
                    reference = results
                assert results == reference, (
                    "toggling observability must not change any response"
                )
                if instrumented:
                    after = _request_series_total(obs.metrics().snapshot())
                    recorded_deltas.append(after - before)

        # S2b — the enabled rounds really recorded: every front-door
        # request of every instrumented round hit the op-labelled counter.
        assert all(delta >= per_round for delta in recorded_deltas), (
            f"instrumented rounds under-recorded: {recorded_deltas} "
            f"(expected ≥ {per_round} each)"
        )

        budget = seconds[False] * MAX_OVERHEAD_FACTOR + EPSILON_SECONDS
        overhead = seconds[True] / seconds[False] - 1.0
        observe(
            "S2a",
            f"{per_round} requests x best-of-{ROUNDS_PER_SIDE}: "
            f"instrumented={seconds[True] * 1000:.1f}ms "
            f"disabled={seconds[False] * 1000:.1f}ms "
            f"overhead={overhead * 100:+.2f}%",
        )
        observe(
            "S2b",
            f"request counter grew by {recorded_deltas} per instrumented "
            f"round (≥ {per_round} required)",
        )
        assert seconds[True] <= budget, (
            f"instrumented round ({seconds[True]:.3f}s) exceeds the 2% "
            f"overhead budget over the kill-switch path "
            f"({seconds[False]:.3f}s, budget {budget:.3f}s)"
        )
    finally:
        obs.set_enabled(was_enabled)
        try:
            with ServiceClient(host, port, timeout=5) as client:
                client.shutdown()
        except OSError:
            pass
        thread.join(timeout=10)
        engine.close()
