"""L1 — lazy plan lowering vs the eager product+trim pipeline.

Claims measured (and asserted, so regressions fail the suite):

* L1a: an RPQ on a ~1k-vertex random labeled graph answered through the
  lazy :class:`~repro.core.plan.GraphProduct` lowering beats the seed
  pipeline (materialize the full product NFA, trim, unroll, compile) on
  the same count + sample workload, with identical results.
* L1b: a spanner over a ~2k-character document through the lazy
  :class:`~repro.core.plan.DocProduct` lowering beats the seed
  compile-everything-then-trim route, with identical results.
* L1c: the lowering is honest about allocation — it never materializes
  more product states than its forward exploration reaches
  (``explored_states ≤ reached_states``), and on the graph-product
  instance it touches a strict fraction of the nominal ``|V|·|Q|``
  cross product (the blow-up the eager route pays).

The seed implementations are inlined below (verbatim logic from the
pre-plan tree) so the comparison stays honest as the library moves on.
"""

from __future__ import annotations

import time

from repro.api import WitnessSet
from repro.automata.dfa import determinize
from repro.automata.nfa import NFA
from repro.graphdb.graph import random_graph
from repro.graphdb.rpq import RPQ
from repro.spanners.eva import extraction_eva

GRAPH_VERTICES = 1000
GRAPH_SEED = 20190622
RPQ_PATTERN = "a(a|b)*b"
RPQ_LENGTH = 6
DOCUMENT_LENGTH = 2000
SAMPLES = 100


def _graph_instance():
    g = random_graph(GRAPH_VERTICES, labels="ab", density=2.0, rng=GRAPH_SEED)
    vertices = sorted(g.vertices)
    return g, vertices[0], vertices[-1]


def _eva_instance():
    eva = extraction_eva("ab", "x", "ab", "ab ")
    base = "ab aabb ba ab b "
    document = (base * (DOCUMENT_LENGTH // len(base) + 1))[:DOCUMENT_LENGTH]
    return eva, document


# ----------------------------------------------------------------------
# The seed eager constructions, inlined verbatim from the pre-plan tree
# ----------------------------------------------------------------------


def seed_compile_rpq(graph, query: RPQ, source, target, deterministic_query=False):
    query_nfa = query.automaton(graph.labels, deterministic_query).without_epsilon()
    alphabet = {(a, v) for _, a, v in graph.edges}
    states: set = set()
    transitions: list[tuple] = []
    initial = (source, query_nfa.initial)
    states.add(initial)
    frontier = [initial]
    while frontier:
        vertex, q = frontier.pop()
        for label, next_vertex in graph.out_edges(vertex):
            for q_next in query_nfa.successors(q, label):
                pair = (next_vertex, q_next)
                transitions.append(((vertex, q), (label, next_vertex), pair))
                if pair not in states:
                    states.add(pair)
                    frontier.append(pair)
    finals = {
        (vertex, q) for (vertex, q) in states if vertex == target and q in query_nfa.finals
    }
    return NFA(states, alphabet, transitions, initial, finals).trim()


def seed_compile_eva(eva, document: str):
    eva.require_functional()
    n = len(document)
    marker_choices: set = {frozenset()}
    for transition in eva.variable:
        marker_choices.add(transition.markers)

    accept = ("accept",)
    states: set = {accept}
    transitions: list[tuple] = []
    for i in range(n + 1):
        for q in eva.states:
            states.add((q, i))

    def after_markers(q, symbol):
        if symbol == frozenset():
            return [q]
        return [
            transition.target
            for transition in eva.variable_successors(q)
            if transition.markers == symbol
        ]

    for i in range(n + 1):
        for q in eva.states:
            for symbol in marker_choices:
                for q_mid in after_markers(q, symbol):
                    if i < n:
                        for q_next in eva.letter_successors(q_mid, document[i]):
                            transitions.append(((q, i), symbol, (q_next, i + 1)))
                    else:
                        if q_mid in eva.finals:
                            transitions.append(((q, i), symbol, accept))

    nfa = NFA(states, marker_choices, transitions, (eva.initial, 0), [accept])
    return nfa.trim()


# ----------------------------------------------------------------------
# Workloads: construct + count + batch-sample, end to end
# ----------------------------------------------------------------------


def eager_rpq_workload():
    g, source, target = _graph_instance()
    started = time.perf_counter()
    nfa = seed_compile_rpq(g, RPQ(RPQ_PATTERN), source, target, deterministic_query=True)
    ws = WitnessSet.from_nfa(nfa, RPQ_LENGTH)
    count = ws.count_exact()
    words = ws.sample_batch(SAMPLES, rng=9) if count else []
    return (count, words), time.perf_counter() - started


def lazy_rpq_workload():
    # from_plan keeps both pipelines at raw kernel words (the eager side
    # has no witness codec either), so the diff is purely construction.
    from repro.graphdb.rpq import compile_rpq_plan

    g, source, target = _graph_instance()
    started = time.perf_counter()
    plan = compile_rpq_plan(
        g, RPQ(RPQ_PATTERN), source, target, deterministic_query=True
    )
    ws = WitnessSet.from_plan(plan, RPQ_LENGTH)
    count = ws.count_exact()
    words = ws.sample_batch(SAMPLES, rng=9) if count else []
    return (count, words), time.perf_counter() - started, ws


def eager_spanner_workload():
    eva, document = _eva_instance()
    started = time.perf_counter()
    nfa = seed_compile_eva(eva, document)
    ws = WitnessSet.from_nfa(nfa, len(document) + 1)
    count = ws.count_exact()
    words = ws.sample_batch(SAMPLES, rng=9) if count else []
    return (count, words), time.perf_counter() - started


def lazy_spanner_workload():
    from repro.spanners.evaluation import compile_eva_plan

    eva, document = _eva_instance()
    started = time.perf_counter()
    ws = WitnessSet.from_plan(compile_eva_plan(eva, document), len(document) + 1)
    count = ws.count_exact()
    words = ws.sample_batch(SAMPLES, rng=9) if count else []
    return (count, words), time.perf_counter() - started, ws


def test_lazy_rpq_beats_eager_product(observe):
    eager_result, eager_seconds = eager_rpq_workload()
    lazy_result, lazy_seconds, ws = lazy_rpq_workload()
    assert lazy_result == eager_result, "lazy and eager RPQ pipelines must agree"
    assert lazy_result[0] > 0, "benchmark instance must be nonempty"
    speedup = eager_seconds / lazy_seconds
    stats = ws.describe()["lowering"]
    observe(
        "L1a",
        f"|V|={GRAPH_VERTICES} n={RPQ_LENGTH} count+{SAMPLES} samples: "
        f"eager={eager_seconds:.3f}s lazy={lazy_seconds:.3f}s "
        f"speedup={speedup:.2f}x explored={stats['explored_states']}"
        f"/{stats['nominal_states']} nominal",
    )
    assert lazy_seconds < eager_seconds, (
        f"lazy lowering ({lazy_seconds:.3f}s) must beat the eager "
        f"product+trim path ({eager_seconds:.3f}s)"
    )


def test_lazy_spanner_beats_eager_product(observe):
    eager_result, eager_seconds = eager_spanner_workload()
    lazy_result, lazy_seconds, ws = lazy_spanner_workload()
    assert lazy_result == eager_result, "lazy and eager spanner pipelines must agree"
    assert lazy_result[0] > 0, "benchmark instance must be nonempty"
    speedup = eager_seconds / lazy_seconds
    stats = ws.describe()["lowering"]
    observe(
        "L1b",
        f"doc={DOCUMENT_LENGTH} chars count+{SAMPLES} samples: "
        f"eager={eager_seconds:.3f}s lazy={lazy_seconds:.3f}s "
        f"speedup={speedup:.2f}x explored={stats['explored_states']}"
        f"/{stats['nominal_states']} nominal",
    )
    assert lazy_seconds < eager_seconds, (
        f"lazy lowering ({lazy_seconds:.3f}s) must beat the eager "
        f"document-product path ({eager_seconds:.3f}s)"
    )


def test_lowering_allocates_only_reachable_states(observe):
    g, source, target = _graph_instance()
    ws = WitnessSet.from_rpq(
        g, RPQ_PATTERN, source, target, RPQ_LENGTH, deterministic_query=True
    )
    ws.count_exact()
    stats = ws.describe()["lowering"]
    observe(
        "L1c",
        f"explored={stats['explored_states']} reached={stats['reached_states']} "
        f"nominal={stats['nominal_states']} kernel_vertices={stats['kernel_vertices']}",
    )
    assert stats["explored_states"] <= stats["reached_states"], (
        "the lowering materialized states its exploration never reached"
    )
    assert stats["reached_states"] < stats["nominal_states"], (
        "the lazy lowering should touch a strict fraction of the nominal "
        "cross product on this instance"
    )
