"""E2 — polynomial-delay enumeration for arbitrary NFAs (Theorem 2).

Claim: the delay grows at most polynomially with the input size (here it
scales with m·n·|Σ| per output).  The recorded series shows delays
growing with m — unlike E1's flat series — but each output still arrives
in microseconds, far from the exponential cost of materializing the
language first.
"""

from __future__ import annotations

import pytest

from repro.core.enumeration import enumerate_words_nfa
from repro.utils.timing import DelayRecorder
from workloads import nfa_sweep

N = 14
OUTPUTS = 2000


@pytest.mark.parametrize("m,nfa", nfa_sweep(), ids=lambda v: str(v) if isinstance(v, int) else "")
def test_poly_delay_enum(benchmark, observe, m, nfa):
    def run():
        recorder = DelayRecorder(keep_items=False)
        recorder.drain(enumerate_words_nfa(nfa, N), limit=OUTPUTS)
        return recorder

    recorder = benchmark.pedantic(run, rounds=3, iterations=1)
    produced = len(recorder.delays)
    if produced > 1:
        steady = recorder.delays[1:]
        mean_us = 1e6 * sum(steady) / len(steady)
        observe(
            "E2",
            f"m={m:<4} n={N} outputs={produced:<6} mean-delay={mean_us:7.2f}µs "
            "(grows with m; compare E1's flat series)",
        )
    assert produced > 0
