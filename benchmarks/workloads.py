"""Shared workload builders for the benchmark suite.

The paper has no datasets; every experiment runs on synthetic families
with fixed seeds (DESIGN.md §5).  Sizes here are chosen so the whole
benchmark suite completes in minutes on a laptop while still showing the
scaling *shapes* EXPERIMENTS.md records.
"""

from __future__ import annotations

from repro.automata.nfa import NFA
from repro.automata.random_gen import (
    ambiguity_blowup,
    contains_pattern_nfa,
    random_nfa,
    random_ufa,
)
from repro.core.fpras import FprasParameters

#: The FPRAS budget used across benchmarks (ablation A1 varies it).
BENCH_FPRAS = FprasParameters(sample_size=64)

#: Seeds are fixed so every run regenerates the same instances.
SEED = 20190621  # the paper's arXiv date


def ufa_sweep(sizes=(10, 20, 40, 80)) -> list[tuple[int, NFA]]:
    """Unambiguous automata of growing state count (E1/E3/E7)."""
    return [
        (m, random_ufa(m, rng=SEED + m, completeness=0.9, ensure_nonempty_length=16))
        for m in sizes
    ]


def nfa_sweep(sizes=(10, 20, 40)) -> list[tuple[int, NFA]]:
    """Ambiguous automata of growing state count (E2/E4)."""
    return [
        (m, random_nfa(m, rng=SEED + m, density=1.8, ensure_nonempty_length=12))
        for m in sizes
    ]


def blowup_sweep(depths=(4, 6, 8)) -> list[tuple[int, NFA]]:
    """The Monte-Carlo-killer family at growing depth (E5/E6)."""
    return [(depth, ambiguity_blowup(depth)) for depth in depths]


def pattern_instance() -> tuple[NFA, int]:
    """The Σ*·pattern·Σ* stress instance used by several experiments."""
    return contains_pattern_nfa("101"), 14
