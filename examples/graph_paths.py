"""Regular path queries over a graph database (§4.2, Corollary 8).

Run:  python examples/graph_paths.py

Two scenarios:

1. a grid graph, where monotone corner-to-corner path counts have the
   closed form C(2k, k) — an end-to-end correctness check the user can
   verify by eye;
2. a social-style graph with a star query ``k(k|f)*k`` ("a knows-edge,
   then any chain of knows/follows, then a knows-edge"), where counting
   is done by the FPRAS and sampling by the Las Vegas generator —
   combined complexity, the case that was open before the paper.
"""

from __future__ import annotations

import math

from repro import WitnessSet
from repro.graphdb.graph import grid_graph, social_graph
from repro.graphdb.rpq import RPQ, RpqEvaluator


def grid_scenario() -> None:
    side = 5
    g = grid_graph(side, side)
    n = 2 * (side - 1)
    ws = WitnessSet.from_rpq(g, "(r|d)*", (0, 0), (side - 1, side - 1), n)
    count = ws.count()
    print(f"grid {side}×{side}: {count} monotone corner paths "
          f"(closed form C({n},{side - 1}) = {math.comb(n, side - 1)})")
    path = ws.sample(rng=1)
    print(f"  one uniform path: {''.join(path.label_word)} via {path.vertices()}")


def social_scenario() -> None:
    g = social_graph(40, rng=9)
    people = sorted(g.vertices)
    source, target = people[0], people[7]
    n = 5
    evaluator = RpqEvaluator(g, RPQ("k(k|f)*k"), source, target, n, rng=2, delta=0.2)
    print(f"\nsocial graph |V|={g.num_vertices}, |E|={g.num_edges}")
    print(f"query k(k|f)*k, paths of length {n} from {source} to {target}:")
    print(f"  instance unambiguous: {evaluator.unambiguous}")
    print(f"  count ({'exact' if evaluator.unambiguous else 'FPRAS'}): {evaluator.count():.1f}")
    print(f"  exact (baseline):     {evaluator.count_exact()}")
    path = evaluator.sample()
    if path is None:
        print("  no such path")
    else:
        hops = " → ".join(str(v) for v in path.vertices())
        print(f"  uniform sample: {hops}")
        print(f"  labels: {''.join(path.label_word)}")


def main() -> None:
    grid_scenario()
    social_scenario()


if __name__ == "__main__":
    main()
