"""Quickstart: enumerate, count, and uniformly sample a regex's language.

Run:  python examples/quickstart.py

The library's one-paragraph story: build a :class:`repro.WitnessSet` —
the compiled query object of the paper's pipeline — and ask the three
fundamental questions (ENUM, COUNT, GEN) about its fixed-length
language.  The facade dispatches per the paper's two complexity
classes: exact polynomial-time algorithms when the automaton is
unambiguous (RelationUL, Theorem 5), FPRAS + Las Vegas sampling
otherwise (RelationNL, Theorem 2/22) — and all shared preprocessing is
computed once and reused across the calls below.

(The pre-1.1 free functions ``repro.count_words`` / ``uniform_samples``
still work but are deprecated shims over this facade.)
"""

from __future__ import annotations

from repro import WitnessSet


def main() -> None:
    pattern = "(ab|ba)*(a|b)?"
    n = 9
    ws = WitnessSet.from_regex(pattern, n, alphabet="ab")
    print(f"pattern     : {pattern}")
    print(f"automaton   : {ws.stripped}")
    print(f"unambiguous : {ws.is_unambiguous}")

    # COUNT — exact (the automaton is small; at scale, pick an
    # approximate backend from the registry).
    print(f"|L_{n}|       : {ws.count()}")

    # COUNT — the paper's FPRAS (Theorem 22), usable even when exact
    # counting is intractable; backends are selected by name.
    estimate = ws.count(backend="fpras", epsilon=0.2, rng=0)
    print(f"FPRAS(δ=0.2): {estimate:.1f}")

    # ENUM — constant delay here (the Glushkov automaton of this pattern
    # is unambiguous), polynomial delay in general.
    first = list(ws.enumerate(limit=5))
    print(f"first five  : {[''.join(w) for w in first]}")

    # GEN — exactly uniform; the sampler reuses the count's tables.
    samples = ws.sample(5, rng=1)
    print(f"uniform     : {[''.join(w) for w in samples]}")

    # The cache makes the whole block above one compilation: every
    # artifact was computed exactly once.
    print(f"cache       : {ws.stats.miss_count} builds, {ws.stats.hit_count} reuses")


if __name__ == "__main__":
    main()
