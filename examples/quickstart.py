"""Quickstart: enumerate, count, and uniformly sample a regex's language.

Run:  python examples/quickstart.py

The library's one-paragraph story: compile a regular expression to an
NFA, then ask the three fundamental questions of the paper — ENUM, COUNT,
GEN — about its fixed-length language.  The dispatcher picks the right
algorithm per the paper's two complexity classes: exact polynomial-time
algorithms when the automaton is unambiguous (RelationUL, Theorem 5),
FPRAS + Las Vegas sampling otherwise (RelationNL, Theorem 2/22).
"""

from __future__ import annotations

import itertools

import repro


def main() -> None:
    pattern = "(ab|ba)*(a|b)?"
    n = 9
    nfa = repro.compile_regex(pattern, alphabet="ab")
    print(f"pattern     : {pattern}")
    print(f"automaton   : {nfa}")
    print(f"unambiguous : {repro.is_unambiguous(nfa)}")

    # COUNT — exact (the automaton is small; at scale, use approx_count_nfa).
    count = repro.count_words(nfa, n)
    print(f"|L_{n}|       : {count}")

    # COUNT — the paper's FPRAS (Theorem 22), usable even when exact
    # counting is intractable.
    estimate = repro.approx_count_nfa(nfa, n, delta=0.2, rng=0)
    print(f"FPRAS(δ=0.2): {estimate:.1f}")

    # ENUM — constant delay here (the Glushkov automaton of this pattern
    # is unambiguous), polynomial delay in general.
    first = list(itertools.islice(repro.enumerate_words(nfa, n), 5))
    print(f"first five  : {[''.join(w) for w in first]}")

    # GEN — exactly uniform.
    samples = repro.uniform_samples(nfa, n, 5, rng=1)
    print(f"uniform     : {[''.join(w) for w in samples]}")


if __name__ == "__main__":
    main()
