"""Document spanners: count, enumerate and sample extractions (§4.1).

Run:  python examples/information_extraction.py

A miniature information-extraction task in the framework of Corollaries
6–7: a variable-set automaton captures the value field after each
``k=`` marker in a noisy log-like document.  The evaluator reports the
number of extractions, lists them, and samples one uniformly — useful
for auditing extraction rules on documents where materializing all
mappings would be too expensive.
"""

from __future__ import annotations

import random

from repro import WitnessSet
from repro.spanners.eva import extraction_eva


def make_document(entries: int, seed: int = 3) -> str:
    generator = random.Random(seed)
    chunks = []
    for _ in range(entries):
        noise = "".join(generator.choice("cd") for _ in range(generator.randrange(1, 4)))
        value = "".join(generator.choice("cd") for _ in range(generator.randrange(1, 5)))
        chunks.append(noise + "ab" + value)
    return "".join(chunks)


def main() -> None:
    # Rule: after the two-character marker 'ab', capture a nonempty block
    # of value characters (c/d) into variable V.
    rule = extraction_eva("ab", "V", content_symbols="cd", alphabet="abcd")
    document = make_document(entries=5)
    print(f"document ({len(document)} chars): {document}")

    ws = WitnessSet.from_spanner(rule, document, rng=0)
    print(f"compiled automaton: {ws.stripped}")
    print(f"unambiguous instance: {ws.is_unambiguous}")
    print(f"number of extractions: {ws.count()}")

    print("\nall extractions (constant/poly delay enumeration):")
    for mapping in ws.enumerate():
        span = mapping["V"]
        print(f"  V = {span!r} → {span.content(document)!r}")

    print("\nthree uniform samples:")
    for seed in range(3):
        mapping = ws.sample(rng=seed)
        print(f"  {mapping} → {mapping.contents(document)['V']!r}")


if __name__ == "__main__":
    main()
