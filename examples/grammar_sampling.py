"""Context-free derivations: counting and uniform sampling (the [GJK+97] setting).

Run:  python examples/grammar_sampling.py

The paper's predecessor results (KSM95 / GJK+97) were about sampling words
from regular and context-free languages at quasi-polynomial cost.  The
``repro.grammars`` extension provides the exact substrate for the CFG
side: derivation counting by dynamic programming and exactly uniform
derivation sampling — with the derivation/word gap (the context-free
analogue of NFA ambiguity) made explicit.
"""

from __future__ import annotations

from collections import Counter

from repro import WitnessSet
from repro.grammars import CNFGrammar, count_derivations, derivation_sampler


def main() -> None:
    # Dyck-like blocks: S → SS | ab  (in CNF).  The word (ab)^k has
    # Catalan(k-1) derivations — maximally ambiguous.
    dyck = CNFGrammar(
        nonterminals=["S", "A", "B"],
        terminals=["a", "b"],
        rules=[("S", ("S", "S")), ("S", ("A", "B")), ("A", ("a",)), ("B", ("b",))],
        start="S",
    )
    counts = count_derivations(dyck, 12)
    print("S → SS | ab   (derivation counts per word length)")
    for length in range(2, 13, 2):
        print(f"  length {length:>2}: {counts[('S', length)]} derivations "
              f"of {len(dyck.words_of_length(length))} word(s)")
    print("  → derivations ≫ words: the CFG analogue of NFA ambiguity\n")

    # An unambiguous grammar: balanced a^n b^n.  Derivations = words, so
    # the sampler is an exactly uniform word sampler (RelationUL-style).
    anbn = CNFGrammar(
        nonterminals=["S", "A", "B", "T"],
        terminals=["a", "b"],
        rules=[
            ("S", ("A", "T")),
            ("T", ("S", "B")),
            ("S", ("A", "B")),
            ("A", ("a",)),
            ("B", ("b",)),
        ],
        start="S",
    )
    print(f"a^n b^n grammar unambiguous up to 10: {anbn.is_unambiguous_up_to(10)}")

    # A two-word language to show the sampler's uniformity.
    two = CNFGrammar(
        nonterminals=["S", "A", "B"],
        terminals=["a", "b"],
        rules=[("S", ("A", "B")), ("S", ("B", "A")), ("A", ("a",)), ("B", ("b",))],
        start="S",
    )
    sampler = derivation_sampler(two, 2)
    histogram = Counter("".join(sampler.sample_word(seed)) for seed in range(1000))
    print(f"uniform sampling over {{ab, ba}}: {dict(histogram)}")

    # The same language through the unified facade: ``from_cfg``
    # materializes the length-n slice into a trie UFA, so the exact
    # RelationUL suite (count / enumerate / sample) applies uniformly.
    ws = WitnessSet.from_cfg(two, 2)
    print(f"facade: |W| = {ws.count()}, words = "
          f"{sorted(''.join(w) for w in ws.enumerate())}, "
          f"one uniform draw = {''.join(ws.sample(rng=0))}")


if __name__ == "__main__":
    main()
