"""Uniform random strings of a regular expression — the headline use case.

Run:  python examples/regex_sampling.py

No mainstream regex library offers *uniform* generation: naive approaches
(random walk over the NFA, or backtracking generators) are biased toward
strings with many parse trees.  This example makes the bias visible and
then removes it:

1. an inherently ambiguous pattern, ``(a|aa)*``-style, where the all-'a'
   string has exponentially many parses;
2. a naive run-sampling generator (the §6.1 estimator's sampler), whose
   histogram is badly skewed;
3. the paper's machinery (PLVUG over the compiled NFA), whose histogram
   is flat.
"""

from __future__ import annotations

from collections import Counter

from repro import LasVegasUniformGenerator, compile_regex, count_words_exact
from repro.baselines.montecarlo import uniform_run_sampler
from repro.core.fpras import FprasParameters


def histogram(title: str, samples: list, top: int = 6) -> None:
    counts = Counter("".join(w) for w in samples)
    print(f"  {title}")
    for text, count in counts.most_common(top):
        bar = "#" * round(40 * count / len(samples))
        print(f"    {text:<14} {count / len(samples):6.1%} {bar}")


def main() -> None:
    pattern = "(a|aa)*(b(a|aa)*)?"
    n = 12
    nfa = compile_regex(pattern, alphabet="ab")
    support_size = count_words_exact(nfa, n)
    print(f"pattern {pattern!r}, length {n}: {support_size} distinct strings")
    print(f"(uniform share would be {1 / support_size:.1%} each)\n")

    draws = 3000

    # The biased route: sample accepting RUNS uniformly — strings with
    # many parses (many a-runs) dominate.
    run_sampler = uniform_run_sampler(nfa.without_epsilon(), n)
    biased = [run_sampler(seed) for seed in range(draws)]
    histogram("naive run sampling (biased toward ambiguous strings):", biased)

    # The paper's route: exactly uniform conditioned on success.
    generator = LasVegasUniformGenerator(
        nfa, n, delta=0.3, rng=7, params=FprasParameters(sample_size=64)
    )
    uniform = generator.sample_many(draws // 10)  # rejection makes draws pricier
    print()
    histogram("PLVUG (Corollary 23, exactly uniform):", uniform)


if __name__ == "__main__":
    main()
