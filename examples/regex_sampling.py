"""Uniform random strings of a regular expression — the headline use case.

Run:  python examples/regex_sampling.py

No mainstream regex library offers *uniform* generation: naive approaches
(random walk over the NFA, or backtracking generators) are biased toward
strings with many parse trees.  This example makes the bias visible and
then removes it:

1. an inherently ambiguous pattern, ``(a|aa)*``-style, where the all-'a'
   string has exponentially many parses;
2. a naive run-sampling generator (the §6.1 estimator's sampler), whose
   histogram is badly skewed;
3. the paper's machinery (PLVUG over the compiled NFA), whose histogram
   is flat.
"""

from __future__ import annotations

from collections import Counter

from repro import WitnessSet
from repro.baselines.montecarlo import uniform_run_sampler
from repro.core.fpras import FprasParameters


def histogram(title: str, samples: list, top: int = 6) -> None:
    counts = Counter("".join(w) for w in samples)
    print(f"  {title}")
    for text, count in counts.most_common(top):
        bar = "#" * round(40 * count / len(samples))
        print(f"    {text:<14} {count / len(samples):6.1%} {bar}")


def main() -> None:
    pattern = "(a|aa)*(b(a|aa)*)?"
    n = 12
    ws = WitnessSet.from_regex(
        pattern, n, alphabet="ab", delta=0.3, params=FprasParameters(sample_size=64)
    )
    support_size = ws.count()  # exact (subset counter; the instance is small)
    print(f"pattern {pattern!r}, length {n}: {support_size} distinct strings")
    print(f"(uniform share would be {1 / support_size:.1%} each)\n")

    draws = 3000

    # The biased route: sample accepting RUNS uniformly — strings with
    # many parses (many a-runs) dominate.
    run_sampler = uniform_run_sampler(ws.stripped, n)
    biased = [run_sampler(seed) for seed in range(draws)]
    histogram("naive run sampling (biased toward ambiguous strings):", biased)

    # The paper's route: exactly uniform conditioned on success (the
    # facade routes ambiguous automata through the Corollary 23 PLVUG).
    uniform = ws.sample(draws // 10, rng=7)  # rejection makes draws pricier
    print()
    histogram("PLVUG (Corollary 23, exactly uniform):", uniform)


if __name__ == "__main__":
    main()
