"""OBDD / nOBDD model counting and sampling (§4.3, Corollaries 9–10).

Run:  python examples/obdd_models.py

Builds an OBDD from a boolean formula, then counts / enumerates / samples
its models with the exact RelationUL algorithms (each model has exactly
one witnessing path).  Then a nondeterministic OBDD — where one model may
have many witnessing paths — goes through the FPRAS and the Las Vegas
generator instead.
"""

from __future__ import annotations

from repro import WitnessSet
from repro.bdd.builders import conj, disj, neg, obdd_from_formula, random_nobdd, var
from repro.core.fpras import FprasParameters


def obdd_scenario() -> None:
    # (a ∧ b) ∨ (¬a ∧ c) ∨ (c ∧ ¬d): a small 4-variable function.
    formula = disj(
        conj(var("a"), var("b")),
        conj(neg(var("a")), var("c")),
        conj(var("c"), neg(var("d"))),
    )
    order = ["a", "b", "c", "d"]
    obdd = obdd_from_formula(formula, order)
    print(f"OBDD: {len(obdd.nodes)} internal nodes over order {order}")

    ws = WitnessSet.from_obdd(obdd)
    print(f"model count (exact, poly time): {ws.count()}")
    print("models (constant-delay enumeration):")
    for model in ws.enumerate():
        print(f"  {model}")
    print(f"one uniform model: {ws.sample(rng=0)}")


def nobdd_scenario() -> None:
    nobdd = random_nobdd(10, branches=4, rng=21)
    ws = WitnessSet.from_obdd(
        nobdd, delta=0.2, rng=1, params=FprasParameters(sample_size=64)
    )
    print(f"\nnOBDD over 10 variables, 4 nondeterministic branches")
    print(f"model count (FPRAS):  {ws.count(backend='fpras'):.1f}")
    print(f"model count (exact):  {ws.count()}")
    model = ws.sample()
    print(f"one uniform model:    {model}")
    print(f"evaluates to:         {nobdd.evaluate(model)}")


def main() -> None:
    obdd_scenario()
    nobdd_scenario()


if __name__ == "__main__":
    main()
