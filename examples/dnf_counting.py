"""SAT-DNF end to end: the §3 worked example, three ways.

Run:  python examples/dnf_counting.py

Counts and samples satisfying assignments of a DNF formula via

1. the generic RelationNL pipeline (compile to MEM-NFA, run the #NFA
   FPRAS and the PLVUG) — the paper's point: one machinery covers it;
2. the same pipeline but entered through the literal §3 NL-transducer
   and the Lemma 13 configuration-graph compilation;
3. the specialized Karp–Luby FPRAS [KL83] as the classical comparator.
"""

from __future__ import annotations

from repro.baselines.karp_luby import karp_luby_count
from repro.core.classes import RelationNL
from repro.core.fpras import FprasParameters
from repro.dnf.formulas import parse_dnf
from repro.dnf.relation import SatDnfRelation


def main() -> None:
    phi = parse_dnf(
        "x0 & x2 & !x5 | !x1 & x3 | x4 & x5 & x6 | !x0 & !x6 & x7",
        num_variables=8,
    )
    exact = phi.count_models_brute()
    print(f"formula over 8 variables, {len(phi.terms)} terms")
    print(f"exact model count (truth table): {exact}")
    print(f"exact (inclusion–exclusion):     {phi.count_models_inclusion_exclusion()}")

    params = FprasParameters(sample_size=64)

    # Route 1: direct compilation.
    nl = RelationNL(SatDnfRelation(), delta=0.2, rng=0, params=params)
    print(f"\ngeneric FPRAS (direct compile):  {nl.count_approx(phi):.1f}")

    # Route 2: through the §3 transducer + Lemma 13.
    nl_transducer = RelationNL(
        SatDnfRelation(via_transducer=True), delta=0.2, rng=0, params=params
    )
    print(f"generic FPRAS (via transducer):  {nl_transducer.count_approx(phi):.1f}")

    # Route 3: Karp–Luby.
    print(f"Karp–Luby FPRAS [KL83]:          {karp_luby_count(phi, rng=0):.1f}")

    print("\nfive uniform satisfying assignments (PLVUG):")
    for _ in range(5):
        assignment = nl.sample(phi)
        print(f"  {assignment}  (satisfies: {phi.evaluate(assignment)})")


if __name__ == "__main__":
    main()
