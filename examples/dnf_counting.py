"""SAT-DNF end to end: the §3 worked example, three ways.

Run:  python examples/dnf_counting.py

Counts and samples satisfying assignments of a DNF formula through one
:class:`repro.WitnessSet` whose counting strategy is chosen from the
solver-backend registry:

1. ``backend="fpras"`` — the generic RelationNL pipeline (compile to
   MEM-NFA, run the #NFA FPRAS) — the paper's point: one machinery
   covers it;
2. the same pipeline entered through the literal §3 NL-transducer and
   the Lemma 13 configuration-graph compilation (``via_transducer``);
3. ``backend="karp_luby"`` — the specialized DNF FPRAS [KL83] as the
   classical comparator, a first-class peer in the registry.
"""

from __future__ import annotations

from repro import WitnessSet
from repro.core.fpras import FprasParameters


def main() -> None:
    text = "x0 & x2 & !x5 | !x1 & x3 | x4 & x5 & x6 | !x0 & !x6 & x7"
    params = FprasParameters(sample_size=64)
    ws = WitnessSet.from_dnf(text, delta=0.2, rng=0, params=params)
    phi = ws.instance
    exact = phi.count_models_brute()
    print(f"formula over {phi.num_variables} variables, {len(phi.terms)} terms")
    print(f"exact model count (truth table): {exact}")
    print(f"exact (inclusion–exclusion):     {phi.count_models_inclusion_exclusion()}")
    print(f"exact (facade, subset counter):  {ws.count()}")

    # Route 1: direct compilation, generic #NFA FPRAS.
    print(f"\ngeneric FPRAS (direct compile):  {ws.count(backend='fpras'):.1f}")

    # Route 2: through the §3 transducer + Lemma 13 — same facade, the
    # compilation route is a constructor flag.
    ws_transducer = WitnessSet.from_dnf(text, via_transducer=True, delta=0.2, rng=0, params=params)
    print(f"generic FPRAS (via transducer):  {ws_transducer.count(backend='fpras'):.1f}")

    # Route 3: Karp–Luby, selected by name from the registry.
    print(f"Karp–Luby FPRAS [KL83]:          {ws.count(backend='karp_luby', rng=0):.1f}")

    print("\nfive uniform satisfying assignments (PLVUG):")
    for assignment in ws.sample(5):
        print(f"  {assignment}  (satisfies: {phi.evaluate(assignment)})")


if __name__ == "__main__":
    main()
